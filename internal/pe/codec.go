// Package pe implements the multi-host layer of the runtime: a job's
// operator graph is partitioned into processing elements (PEs), connected
// operators in different PEs communicate over TCP, and — exactly as the
// paper describes (§2) — every PE independently runs the multi-level
// elasticity scheme on its own slice of the graph.
package pe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"streamelastic/internal/spl"
)

// maxFrameBytes bounds a single encoded frame (v1 tuple or v2 batch),
// protecting readers from corrupt or hostile length prefixes.
const maxFrameBytes = 16 << 20

// v1 frame layout (little endian):
//
//	u32 frameLen (bytes after this field; high bit clear)
//	u64 wireSeq (per-stream transport sequence, 1-based; the reconnect
//	            protocol's resume/ack/dedup currency — distinct from the
//	            application-level Tuple.Seq below)
//	u64 seq, u64 key, i64 time
//	f64 num1, f64 num2
//	u32 textLen, text bytes
//	u32 payloadLen, payload bytes
const fixedHeaderBytes = 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4

// batchFrameFlag is the high bit of the u32 length prefix and marks a v2
// batch frame. It is unambiguous because a v1 frameLen never exceeds
// maxFrameBytes (16 MiB < 2^31), and a v1-only decoder that reads a flagged
// prefix sees an impossibly large length and fails closed.
const batchFrameFlag = uint32(1) << 31

// v2 batch frame layout (little endian):
//
//	u32 frameLen | batchFrameFlag (bytes after this field)
//	u64 baseSeq (wire sequence of the first tuple; tuple i carries
//	            baseSeq+i implicitly — per-tuple wire seqs never hit the wire)
//	u32 count (tuples in the batch, 1..maxBatchTuples)
//	count zigzag-varint record lengths, each a delta from the previous
//	      record's length (the first from 0) — uniform tuples cost 1 byte
//	      for the first and 1 zero byte per subsequent tuple
//	count records, concatenated; each record is the v1 body minus wireSeq:
//	      u64 seq, u64 key, i64 time, f64 num1, f64 num2,
//	      u32 textLen, text bytes, u32 payloadLen, payload bytes
const (
	batchHeaderBytes = 8 + 4
	batchRecordFixed = 8 + 8 + 8 + 8 + 8 + 4 + 4
)

// maxBatchTuples bounds a batch frame's tuple count against hostile values;
// the writer never stages more than writerBatchTuples per frame, so the
// bound is generous.
const maxBatchTuples = 1024

// batchTargetBytes is the soft body-size target the export's chunking loop
// cuts batch frames at. Frame-overhead amortization saturates after a few
// dozen records, but the costs that scale with frame size keep growing: the
// importer materializes a whole frame into one arena block before any tuple
// is built, and a retransmit slot pins the full frame until its window slot
// is re-acked — so bulk tuples (16 KiB payloads) in maxFrameBytes-sized
// chunks turn into multi-MiB blocks that thrash the size-class pools and
// stall acks. A single tuple larger than the target still gets its own
// frame (the hard bound stays maxFrameBytes); the target only stops *more*
// tuples from piling into an already-large chunk.
const batchTargetBytes = 64 << 10

// wireBufBytes sizes the buffered reader/writer on each side of a stream
// connection. On the send side it doubles as the frame-coalescing window:
// the writer goroutine flushes by policy (see exportOp), so many small
// frames leave in one syscall.
const wireBufBytes = 64 << 10

// marshalFrame appends one tuple frame (length prefix included) carrying
// wire sequence wireSeq to dst[:0], returning the extended slice. The
// retransmit ring marshals into its per-slot buffers through this, so a
// staged frame's bytes outlive the pooled tuple.
func marshalFrame(dst []byte, wireSeq uint64, t *spl.Tuple) ([]byte, error) {
	frameLen := fixedHeaderBytes + len(t.Text) + len(t.Payload)
	if frameLen > maxFrameBytes {
		return nil, fmt.Errorf("pe: tuple frame %d bytes exceeds limit %d", frameLen, maxFrameBytes)
	}
	need := 4 + frameLen
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	b := dst[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(frameLen))
	b = binary.LittleEndian.AppendUint64(b, wireSeq)
	b = binary.LittleEndian.AppendUint64(b, t.Seq)
	b = binary.LittleEndian.AppendUint64(b, t.Key)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Time))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num1))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num2))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Text)))
	b = append(b, t.Text...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Payload)))
	b = append(b, t.Payload...)
	return b, nil
}

// zigzag maps a signed delta to an unsigned varint-friendly value (small
// magnitudes of either sign encode short); unzigzag inverts it.
func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of binary.AppendUvarint(nil, u).
func uvarintLen(u uint64) int { return (bits.Len64(u|1) + 6) / 7 }

// batchRecordBytes returns tuple t's record size within a batch frame.
func batchRecordBytes(t *spl.Tuple) int {
	return batchRecordFixed + len(t.Text) + len(t.Payload)
}

// batchFrameAdd returns the wire bytes tuple t adds to a batch frame whose
// previous record was prevRec bytes: its record plus the delta varint. The
// export's chunking loop uses it to fit a staged drain under maxFrameBytes
// with the exact arithmetic marshalBatchFrame applies.
func batchFrameAdd(t *spl.Tuple, prevRec int) int {
	rec := batchRecordBytes(t)
	return uvarintLen(zigzag(int64(rec-prevRec))) + rec
}

// marshalBatchFrame appends one v2 batch frame (length prefix included)
// carrying ts as wire sequences baseSeq..baseSeq+len(ts)-1 to dst[:0],
// returning the extended slice. Like marshalFrame it writes into the
// retransmit ring's per-slot buffers, so the frame bytes outlive the pooled
// tuples.
func marshalBatchFrame(dst []byte, baseSeq uint64, ts []*spl.Tuple) ([]byte, error) {
	if len(ts) == 0 || len(ts) > maxBatchTuples {
		return nil, fmt.Errorf("pe: batch of %d tuples outside [1, %d]", len(ts), maxBatchTuples)
	}
	body := batchHeaderBytes
	prev := 0
	for _, t := range ts {
		body += batchFrameAdd(t, prev)
		prev = batchRecordBytes(t)
	}
	if body > maxFrameBytes {
		return nil, fmt.Errorf("pe: batch frame %d bytes exceeds limit %d", body, maxFrameBytes)
	}
	need := 4 + body
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	b := dst[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(body)|batchFrameFlag)
	b = binary.LittleEndian.AppendUint64(b, baseSeq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ts)))
	prev = 0
	for _, t := range ts {
		rec := batchRecordBytes(t)
		b = binary.AppendUvarint(b, zigzag(int64(rec-prev)))
		prev = rec
	}
	for _, t := range ts {
		b = binary.LittleEndian.AppendUint64(b, t.Seq)
		b = binary.LittleEndian.AppendUint64(b, t.Key)
		b = binary.LittleEndian.AppendUint64(b, uint64(t.Time))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num1))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num2))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Text)))
		b = append(b, t.Text...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Payload)))
		b = append(b, t.Payload...)
	}
	return b, nil
}

// encoder writes tuples to a stream in frame format.
type encoder struct {
	w   *bufio.Writer
	buf []byte
	seq uint64 // wire sequence of the last frame written by writeFrame
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriterSize(w, wireBufBytes)}
}

// writeFrame appends one tuple frame to the buffered writer without
// flushing, returning the frame's wire size (length prefix included). The
// wire sequence auto-increments from 1; the reliable transport writes
// retransmit-ring slots via writeBytes instead, where it controls the
// sequence. The scratch buffer is reused across calls, so steady-state
// encoding is allocation-free.
func (e *encoder) writeFrame(t *spl.Tuple) (int, error) {
	b, err := marshalFrame(e.buf, e.seq+1, t)
	if err != nil {
		return 0, err
	}
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return 0, err
	}
	e.seq++
	return len(b), nil
}

// writeBytes appends an already-marshalled frame to the buffered writer.
func (e *encoder) writeBytes(b []byte) (int, error) {
	return e.w.Write(b)
}

// flush pushes all buffered frames onto the underlying connection.
func (e *encoder) flush() error { return e.w.Flush() }

// buffered reports how many encoded bytes await a flush.
func (e *encoder) buffered() int { return e.w.Buffered() }

// encode writes one frame and flushes immediately: the single-frame path
// used by tests and by the per-tuple-flush baseline benchmark. The batched
// transport calls writeFrame/flush separately.
func (e *encoder) encode(t *spl.Tuple) error {
	if _, err := e.writeFrame(t); err != nil {
		return err
	}
	return e.flush()
}

// decoder reads tuple frames from a stream.
type decoder struct {
	r     *bufio.Reader
	nread uint64
	seq   uint64 // wire sequence of the last decoded frame
	last  int    // wire bytes of the last decoded frame
	// lenBuf is the length-prefix scratch; a local array would escape
	// through the io.ReadFull interface call and cost an allocation per
	// frame.
	lenBuf [4]byte
	// lens is the batch record-length scratch, reused across decodeFrame
	// calls so steady-state batch decoding is allocation-free.
	lens []int
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReaderSize(r, wireBufBytes)}
}

// bytesRead returns the cumulative wire bytes of successfully decoded
// frames (length prefixes included).
func (d *decoder) bytesRead() uint64 { return d.nread }

// wireSeq returns the wire sequence of the last decoded frame; the import
// side deduplicates retransmitted frames by it.
func (d *decoder) wireSeq() uint64 { return d.seq }

// lastFrameBytes returns the wire size of the last decoded frame.
func (d *decoder) lastFrameBytes() int { return d.last }

// decode reads one tuple, returning io.EOF (possibly wrapped) when the
// stream ends cleanly. The frame bytes land once in a pooled, ref-counted
// arena and the tuple's Payload is a zero-copy *view* into it — no
// per-frame payload copy, no payload-pool round trip. The tuple struct
// comes from the spl pool and holds the arena reference; the PR 1 ownership
// protocol extends across the wire, so the consumer must Release the tuple
// (directly or via the runtime) when its life ends, which is what lets the
// arena buffer recycle.
func (d *decoder) decode() (*spl.Tuple, error) {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		return nil, err
	}
	return d.decodeV1(binary.LittleEndian.Uint32(d.lenBuf[:]))
}

// decodeV1 reads and materializes a v1 frame body given its raw length
// prefix. A batch-flagged prefix fails the range check below (the flagged
// value exceeds maxFrameBytes), which is exactly the fail-closed behaviour a
// v1-only peer must have.
func (d *decoder) decodeV1(frameLen uint32) (*spl.Tuple, error) {
	if frameLen < fixedHeaderBytes || frameLen > maxFrameBytes {
		return nil, fmt.Errorf("pe: invalid frame length %d", frameLen)
	}
	a := spl.AcquireArena(int(frameLen))
	b := a.Bytes()
	if _, err := io.ReadFull(d.r, b); err != nil {
		a.Release()
		return nil, fmt.Errorf("pe: truncated frame: %w", err)
	}
	t := spl.AcquireTuple()
	// fail drops both the creator's arena reference and the half-built
	// tuple (which never attached, so releasing it cannot double-drop).
	fail := func(err error) (*spl.Tuple, error) {
		t.Release()
		a.Release()
		return nil, err
	}
	wireSeq := binary.LittleEndian.Uint64(b[0:])
	t.Seq = binary.LittleEndian.Uint64(b[8:])
	t.Key = binary.LittleEndian.Uint64(b[16:])
	t.Time = int64(binary.LittleEndian.Uint64(b[24:]))
	t.Num1 = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	t.Num2 = math.Float64frombits(binary.LittleEndian.Uint64(b[40:]))
	off := 48
	textLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+textLen > len(b) {
		return fail(fmt.Errorf("pe: text length %d overruns frame", textLen))
	}
	if textLen > 0 {
		// Strings are immutable and may outlive the frame (operators stash
		// them in aggregates), so the text cannot be a view; this is the one
		// copy decode still pays, and only on text-bearing tuples.
		t.Text = string(b[off : off+textLen])
	}
	off += textLen
	if off+4 > len(b) {
		return fail(fmt.Errorf("pe: frame too short for payload length"))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+payloadLen != len(b) {
		return fail(fmt.Errorf("pe: payload length %d inconsistent with frame", payloadLen))
	}
	if payloadLen > 0 {
		t.AttachArena(a, b[off:off+payloadLen])
	}
	// Drop the creator reference: from here the arena lives exactly as long
	// as the tuple's view (or dies now for payload-less tuples).
	a.Release()
	d.seq = wireSeq
	d.last = 4 + int(frameLen)
	d.nread += uint64(d.last)
	return t, nil
}

// decodeFrame reads one wire frame — v1 single tuple or v2 batch — and
// materializes its tuples into out, returning the tuple count and the wire
// sequence of the first tuple (tuple i carries first+i). out must hold at
// least maxBatchTuples entries. A batch frame's tuples share one pooled
// arena: the records are read into it once and every payload is a zero-copy
// view, attached through references pre-taken in a single RetainN. The frame
// is fully validated before any tuple is built, so a hostile or truncated
// frame fails closed — no tuples escape, the arena is released, and the
// error poisons the connection.
func (d *decoder) decodeFrame(out []*spl.Tuple) (int, uint64, error) {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		return 0, 0, err
	}
	raw := binary.LittleEndian.Uint32(d.lenBuf[:])
	if raw&batchFrameFlag == 0 {
		t, err := d.decodeV1(raw)
		if err != nil {
			return 0, 0, err
		}
		if len(out) < 1 {
			t.Release()
			return 0, 0, fmt.Errorf("pe: no output capacity for frame")
		}
		out[0] = t
		return 1, d.seq, nil
	}
	frameLen := raw &^ batchFrameFlag
	if frameLen < batchHeaderBytes+1+batchRecordFixed || frameLen > maxFrameBytes {
		return 0, 0, fmt.Errorf("pe: invalid batch frame length %d", frameLen)
	}
	a := spl.AcquireArena(int(frameLen))
	b := a.Bytes()
	if _, err := io.ReadFull(d.r, b); err != nil {
		a.Release()
		return 0, 0, fmt.Errorf("pe: truncated batch frame: %w", err)
	}
	fail := func(err error) (int, uint64, error) {
		a.Release()
		return 0, 0, err
	}
	baseSeq := binary.LittleEndian.Uint64(b[0:])
	count := int(binary.LittleEndian.Uint32(b[8:]))
	if count < 1 || count > maxBatchTuples {
		return fail(fmt.Errorf("pe: batch count %d outside [1, %d]", count, maxBatchTuples))
	}
	if count > len(out) {
		return fail(fmt.Errorf("pe: batch count %d exceeds output capacity %d", count, len(out)))
	}
	if baseSeq == 0 || baseSeq > math.MaxUint64-uint64(count) {
		return fail(fmt.Errorf("pe: batch base sequence %d invalid for count %d", baseSeq, count))
	}
	// Pass 1: decode the delta-varint record lengths and check the records
	// exactly tile the rest of the frame, every text/payload length included.
	if cap(d.lens) < count {
		d.lens = make([]int, maxBatchTuples)
	}
	lens := d.lens[:count]
	off := batchHeaderBytes
	prev := 0
	for i := 0; i < count; i++ {
		u, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return fail(fmt.Errorf("pe: bad record length varint at offset %d", off))
		}
		off += n
		rec64 := int64(prev) + unzigzag(u)
		if rec64 < batchRecordFixed || rec64 > maxFrameBytes {
			return fail(fmt.Errorf("pe: record length %d outside [%d, %d]", rec64, batchRecordFixed, maxFrameBytes))
		}
		lens[i] = int(rec64)
		prev = int(rec64)
	}
	recsStart := off
	for i := 0; i < count; i++ {
		rec := lens[i]
		if rec > len(b)-off {
			return fail(fmt.Errorf("pe: record %d (%d bytes) overruns frame", i, rec))
		}
		r := b[off : off+rec]
		textLen := int(binary.LittleEndian.Uint32(r[40:]))
		if textLen > rec-batchRecordFixed {
			return fail(fmt.Errorf("pe: text length %d overruns record", textLen))
		}
		payloadLen := int(binary.LittleEndian.Uint32(r[44+textLen:]))
		if payloadLen != rec-batchRecordFixed-textLen {
			return fail(fmt.Errorf("pe: payload length %d inconsistent with record", payloadLen))
		}
		off += rec
	}
	if off != len(b) {
		return fail(fmt.Errorf("pe: batch records end at %d, frame is %d bytes", off, len(b)))
	}
	// Pass 2: build the tuples. Validation above guarantees no failure from
	// here, so reference accounting is straightforward: one pre-taken view
	// reference per record (payload-less records return theirs immediately),
	// plus the creator reference dropped at the end.
	a.RetainN(int32(count))
	off = recsStart
	for i := 0; i < count; i++ {
		rec := lens[i]
		r := b[off : off+rec]
		t := spl.AcquireTuple()
		t.Seq = binary.LittleEndian.Uint64(r[0:])
		t.Key = binary.LittleEndian.Uint64(r[8:])
		t.Time = int64(binary.LittleEndian.Uint64(r[16:]))
		t.Num1 = math.Float64frombits(binary.LittleEndian.Uint64(r[24:]))
		t.Num2 = math.Float64frombits(binary.LittleEndian.Uint64(r[32:]))
		textLen := int(binary.LittleEndian.Uint32(r[40:]))
		if textLen > 0 {
			// Same copy rationale as decodeV1: strings may outlive the frame.
			t.Text = string(r[44 : 44+textLen])
		}
		if payloadLen := rec - batchRecordFixed - textLen; payloadLen > 0 {
			t.AttachArenaRetained(a, r[48+textLen:48+textLen+payloadLen])
		} else {
			a.Release()
		}
		out[i] = t
		off += rec
	}
	a.Release()
	d.seq = baseSeq + uint64(count) - 1
	d.last = 4 + int(frameLen)
	d.nread += uint64(d.last)
	return count, baseSeq, nil
}
