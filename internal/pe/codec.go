// Package pe implements the multi-host layer of the runtime: a job's
// operator graph is partitioned into processing elements (PEs), connected
// operators in different PEs communicate over TCP, and — exactly as the
// paper describes (§2) — every PE independently runs the multi-level
// elasticity scheme on its own slice of the graph.
package pe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"streamelastic/internal/spl"
)

// maxFrameBytes bounds a single encoded tuple, protecting readers from
// corrupt or hostile length prefixes.
const maxFrameBytes = 16 << 20

// frame layout (little endian):
//
//	u32 frameLen (bytes after this field)
//	u64 seq, u64 key, i64 time
//	f64 num1, f64 num2
//	u32 textLen, text bytes
//	u32 payloadLen, payload bytes
const fixedHeaderBytes = 8 + 8 + 8 + 8 + 8 + 4 + 4

// encoder writes tuples to a stream in frame format.
type encoder struct {
	w   *bufio.Writer
	buf []byte
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriterSize(w, 64<<10)}
}

// encode appends one tuple frame and flushes, keeping per-tuple latency
// bounded at the cost of small writes; TCP buffering amortizes the rest.
func (e *encoder) encode(t *spl.Tuple) error {
	frameLen := fixedHeaderBytes + len(t.Text) + len(t.Payload)
	if frameLen > maxFrameBytes {
		return fmt.Errorf("pe: tuple frame %d bytes exceeds limit %d", frameLen, maxFrameBytes)
	}
	need := 4 + frameLen
	if cap(e.buf) < need {
		e.buf = make([]byte, 0, need)
	}
	b := e.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(frameLen))
	b = binary.LittleEndian.AppendUint64(b, t.Seq)
	b = binary.LittleEndian.AppendUint64(b, t.Key)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Time))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num1))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num2))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Text)))
	b = append(b, t.Text...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Payload)))
	b = append(b, t.Payload...)
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	return e.w.Flush()
}

// decoder reads tuple frames from a stream.
type decoder struct {
	r   *bufio.Reader
	buf []byte
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReaderSize(r, 64<<10)}
}

// decode reads one tuple, returning io.EOF (possibly wrapped) when the
// stream ends cleanly.
func (d *decoder) decode() (*spl.Tuple, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(d.r, lenBuf[:]); err != nil {
		return nil, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < fixedHeaderBytes || frameLen > maxFrameBytes {
		return nil, fmt.Errorf("pe: invalid frame length %d", frameLen)
	}
	if cap(d.buf) < int(frameLen) {
		d.buf = make([]byte, frameLen)
	}
	b := d.buf[:frameLen]
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, fmt.Errorf("pe: truncated frame: %w", err)
	}
	t := &spl.Tuple{
		Seq:  binary.LittleEndian.Uint64(b[0:]),
		Key:  binary.LittleEndian.Uint64(b[8:]),
		Time: int64(binary.LittleEndian.Uint64(b[16:])),
		Num1: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		Num2: math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
	}
	off := 40
	textLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+textLen > len(b) {
		return nil, fmt.Errorf("pe: text length %d overruns frame", textLen)
	}
	if textLen > 0 {
		t.Text = string(b[off : off+textLen])
	}
	off += textLen
	if off+4 > len(b) {
		return nil, fmt.Errorf("pe: frame too short for payload length")
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+payloadLen != len(b) {
		return nil, fmt.Errorf("pe: payload length %d inconsistent with frame", payloadLen)
	}
	if payloadLen > 0 {
		t.Payload = make([]byte, payloadLen)
		copy(t.Payload, b[off:])
	}
	return t, nil
}
