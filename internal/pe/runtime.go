package pe

import (
	"context"
	"fmt"

	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/obs"
)

// NewPERuntime constructs one processing element from its plan: the engine,
// the optional elastic coordinator, watchdog, and checkpointer, all
// reporting into reg and rec. It is the per-PE half of Launch, exported so
// the cluster job manager can build replacement PEs while a job runs.
// dumpOnTrip (optional) receives a reason string each time the watchdog
// trips. Stream endpoints must be wired before the runtime starts.
func NewPERuntime(plan *Plan, reg *obs.Registry, rec *obs.FlightRecorder, opts Options, dumpOnTrip func(string)) (*PERuntime, error) {
	peID := int32(plan.PE)
	execOpts := opts.Exec
	execOpts.Obs = reg
	execOpts.Recorder = rec
	execOpts.ObsPE = plan.PE
	execOpts.SampleEvery = opts.SampleEvery
	if opts.Fault != nil {
		execOpts.Fault = opts.Fault
		execOpts.FaultSiteBase = fault.OpSite(plan.PE, 0)
	}
	eng, err := exec.New(plan.Graph, execOpts)
	if err != nil {
		return nil, fmt.Errorf("pe %d: %w", plan.PE, err)
	}
	rt := &PERuntime{Plan: plan, Eng: eng, Reg: reg}
	if !opts.DisableElasticity {
		cfg := opts.Elastic
		if cfg == (core.Config{}) {
			cfg = core.DefaultConfig()
		}
		coord, err := core.NewCoordinator(eng, cfg)
		if err != nil {
			return nil, fmt.Errorf("pe %d coordinator: %w", plan.PE, err)
		}
		coord.SetObserver(func(ev core.TraceEvent) {
			detail := string(ev.Phase)
			if ev.Note != "" {
				detail += ": " + ev.Note
			}
			rec.Record(obs.EvAdapt, peID, int64(ev.Threads), int64(ev.Queues), detail)
		})
		rt.Coord = coord
	}
	coord := rt.Coord
	obs.RegisterSettled(rt.Reg, func() bool { return coord == nil || coord.Settled() })
	if opts.EnableWatchdog {
		wcfg := opts.Watchdog
		userTrip, userRecover := wcfg.OnTrip, wcfg.OnRecover
		wcfg.OnTrip = func(cause string) {
			rec.Record(obs.EvWatchdogTrip, peID, 0, 0, cause)
			if dumpOnTrip != nil {
				dumpOnTrip(fmt.Sprintf("watchdog trip pe%d: %s", peID, cause))
			}
			if userTrip != nil {
				userTrip(cause)
			}
		}
		wcfg.OnRecover = func() {
			rec.Record(obs.EvWatchdogRecover, peID, 0, 0, "")
			if userRecover != nil {
				userRecover()
			}
		}
		rt.Watchdog = watchdogFor(rt, wcfg, opts.StallAfter)
		registerWatchdogMetrics(rt.Reg, rt.Watchdog)
	}
	if opts.Checkpoint.Enabled {
		if err := wireCheckpointer(rt, plan, opts); err != nil {
			return nil, fmt.Errorf("pe %d checkpoint: %w", plan.PE, err)
		}
	}
	return rt, nil
}

// Start launches the runtime: engine, coordinator loop, watchdog, and
// checkpointer, in that order.
func (rt *PERuntime) Start(ctx context.Context) error {
	if err := rt.Eng.Start(ctx); err != nil {
		return fmt.Errorf("pe %d start: %w", rt.Plan.PE, err)
	}
	if rt.Coord != nil {
		actx, cancel := context.WithCancel(ctx)
		done := make(chan struct{})
		rt.cancel = cancel
		rt.done = done
		coord := rt.Coord
		go func() {
			defer close(done)
			_ = coord.Run(actx)
		}()
	}
	if rt.Watchdog != nil {
		rt.Watchdog.Start()
	}
	if rt.Ckpt != nil {
		rt.Ckpt.Start()
	}
	return nil
}

// StopControl halts the runtime's control loops — watchdog first (so the
// shutdown is not mistaken for a stall), then the coordinator, then the
// checkpointer — leaving the engine running. The migration executor calls
// this before quiescing a retiring PE; Job.Stop orders the same phases
// across all PEs instead.
func (rt *PERuntime) StopControl() {
	if rt.Watchdog != nil {
		rt.Watchdog.Stop()
	}
	if rt.cancel != nil {
		rt.cancel()
		<-rt.done
		rt.cancel = nil
	}
	if rt.Ckpt != nil {
		rt.Ckpt.Stop()
		rt.Ckpt = nil
	}
}

// StopEngine stops the engine. Call after StopControl and after the plan's
// stream endpoints are closed (a live import reader would otherwise block
// on a parked operator thread).
func (rt *PERuntime) StopEngine() {
	rt.Eng.Stop()
}
