package pe

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
)

// syncBuf is an io.Writer safe to read while the watchdog goroutine dumps
// into it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWatchdogTripDumpsFlightRecorder injects a writer stall long enough to
// trip PE0's watchdog and asserts the trip automatically produces a
// flight-recorder dump on Options.FlightDump, with the trip itself and the
// injected fault recorded as events.
func TestWatchdogTripDumpsFlightRecorder(t *testing.T) {
	g, _ := seqJob(t, 2_000_000) // effectively unbounded for this test's lifetime
	inj := fault.New(3)
	inj.Arm(fault.WriterStall, 0, fault.Plan{Nth: 200, Delay: 600 * time.Millisecond})
	dump := &syncBuf{}
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{
		Exec:           exec.Options{AdaptPeriod: 20 * time.Millisecond},
		Elastic:        core.DefaultConfig(),
		Fault:          inj,
		EnableWatchdog: true,
		Watchdog: monitor.WatchdogConfig{
			Interval:       10 * time.Millisecond,
			UnhealthyAfter: 2,
			HealthyAfter:   4,
		},
		StallAfter: 30 * time.Millisecond,
		FlightDump: dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	defer job.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(dump.String(), "watchdog trip pe0") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	text := dump.String()
	if !strings.Contains(text, "=== flight-recorder dump (watchdog trip pe0") {
		t.Fatalf("no automatic dump after watchdog trip; dump buffer:\n%s", text)
	}
	if !strings.Contains(text, "watchdog-trip") {
		t.Fatalf("dump does not carry the trip event:\n%s", text)
	}
	if !strings.Contains(text, "fault") || !strings.Contains(text, "writer-stall") {
		t.Fatalf("dump does not carry the injected fault:\n%s", text)
	}

	var sawTrip, sawFault bool
	for _, ev := range job.FlightRecorder().Events() {
		switch ev.Kind {
		case obs.EvWatchdogTrip:
			sawTrip = true
			if ev.PE != 0 || ev.Detail == "" {
				t.Fatalf("trip event malformed: %+v", ev)
			}
		case obs.EvFault:
			sawFault = true
		}
	}
	if !sawTrip || !sawFault {
		t.Fatalf("recorder missing events: trip=%v fault=%v", sawTrip, sawFault)
	}

	// The watchdog gauges must reflect the trip on PE0's registry.
	trips := uint64(0)
	for _, s := range job.Registries()[0].Gather() {
		if s.Name == obs.MetricWatchdogTrips {
			trips = s.U
		}
	}
	if trips == 0 {
		t.Fatal("watchdog_trips_total stayed 0 on PE0's registry after a trip")
	}

	// On-demand dump works too and is self-describing.
	var manual bytes.Buffer
	job.DumpFlight(&manual, "test requested")
	if !strings.Contains(manual.String(), "=== flight-recorder dump (test requested) ===") {
		t.Fatalf("manual dump header missing:\n%s", manual.String())
	}
}

// TestJobRegistriesExposeTransportSeries runs a small two-PE job to
// completion and checks the per-PE registries carry the transport series
// (export on PE0, import on PE1), the engine series, and that the job's
// Statuses provider folds them back into per-stream rows matching
// StreamStats.
func TestJobRegistriesExposeTransportSeries(t *testing.T) {
	const n = 5000
	g, sink := seqJob(t, n)
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain")
	}

	regs := job.Registries()
	if len(regs) != 2 {
		t.Fatalf("got %d registries, want 2", len(regs))
	}
	find := func(pe int, name, dir string) *obs.Sample {
		for _, s := range regs[pe].Gather() {
			if s.Name != name {
				continue
			}
			matched := dir == ""
			for _, l := range s.Labels {
				if l.Key == "dir" && l.Value == dir {
					matched = true
				}
			}
			if matched {
				cp := s
				return &cp
			}
		}
		return nil
	}
	ss := job.StreamStats()[0]
	exp := find(0, obs.MetricTransportTuples, "export")
	if exp == nil || exp.U != ss.Sent {
		t.Fatalf("export tuples series = %+v, want %d", exp, ss.Sent)
	}
	imp := find(1, obs.MetricTransportTuples, "import")
	if imp == nil || imp.U != ss.Received {
		t.Fatalf("import tuples series = %+v, want %d", imp, ss.Received)
	}
	for pe := 0; pe < 2; pe++ {
		if s := find(pe, obs.MetricSinkTuples, ""); s == nil {
			t.Fatalf("pe%d registry missing %s", pe, obs.MetricSinkTuples)
		}
		if s := find(pe, obs.MetricSchedLocalPushes, ""); s == nil {
			t.Fatalf("pe%d registry missing %s", pe, obs.MetricSchedLocalPushes)
		}
	}

	sts := job.Statuses()
	if len(sts) != 2 || sts[0].Name != "pe0" || sts[1].Name != "pe1" {
		t.Fatalf("statuses = %+v", sts)
	}
	if len(sts[0].Streams) != 1 || sts[0].Streams[0].Dir != "export" ||
		sts[0].Streams[0].Tuples != ss.Sent {
		t.Fatalf("pe0 stream rows = %+v, want one export of %d", sts[0].Streams, ss.Sent)
	}
	if len(sts[1].Streams) != 1 || sts[1].Streams[0].Dir != "import" ||
		sts[1].Streams[0].Tuples != ss.Received {
		t.Fatalf("pe1 stream rows = %+v, want one import of %d", sts[1].Streams, ss.Received)
	}
	if sts[1].SinkTuples != n {
		t.Fatalf("pe1 sink tuples = %d, want %d", sts[1].SinkTuples, n)
	}
}
