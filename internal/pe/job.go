package pe

import (
	"context"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
	"streamelastic/internal/state"
)

// Options configure a job launch.
type Options struct {
	// Exec configures every PE's live engine.
	Exec exec.Options
	// Elastic configures every PE's coordinator; the zero value means
	// core.DefaultConfig. Each PE adapts independently, as in the paper.
	Elastic core.Config
	// DisableElasticity runs the PEs without adaptation.
	DisableElasticity bool
	// DialTimeout bounds stream wiring at launch (default 5s).
	DialTimeout time.Duration
	// Transport tunes every cross-PE stream (staging ring, flush policy,
	// backpressure mode, retransmit window, reconnect backoff); the zero
	// value means defaults.
	Transport TransportConfig
	// LocalEdges routes every cross-PE stream through the in-process fast
	// path: since all PEs of a Job share one process, a co-located edge can
	// hand pooled tuple clones straight from the export's staging ring to the
	// peer import, skipping encode/frame/TCP/decode entirely. The edge keeps
	// the staging ring's backpressure and drop accounting and still reports
	// StreamStats (Sent/Received/batch sizes), but wire-only counters —
	// bytes, flushes, retransmits, reconnects — stay truthfully zero, and the
	// reliability machinery is exempt (the handoff is lossless by
	// construction). Opt-in because wire-fault chaos hooks and byte-level
	// accounting only exist on TCP edges.
	LocalEdges bool
	// LocalEdgeFor, when set, decides per edge whether it takes the
	// in-process fast path (overrides LocalEdges), so a job can mix local
	// and TCP delivery.
	LocalEdgeFor func(CrossEdge) bool
	// Fault optionally injects deterministic faults into every PE's
	// operators and streams (chaos testing); nil means none. Operator sites
	// are fault.OpSite(pe, node); stream sites are the cross-edge stream id.
	Fault *fault.Injector
	// EnableWatchdog runs a health watchdog per PE that freezes the PE's
	// elastic coordinator while the PE looks unhealthy (wedged scheduler
	// queues, disconnected or stalled streams).
	EnableWatchdog bool
	// Watchdog tunes the watchdog cadence and hysteresis (zero = defaults).
	Watchdog monitor.WatchdogConfig
	// StallAfter is how long without progress the watchdog probes tolerate
	// before declaring a stall (default 1s).
	StallAfter time.Duration
	// Recorder is the job's flight recorder; nil means Launch creates one of
	// obs.DefaultFlightRecorderSize. All PEs share it, each tagging its
	// events with its PE id.
	Recorder *obs.FlightRecorder
	// FlightDump, when set, receives an automatic flight-recorder dump each
	// time a PE watchdog trips (requires EnableWatchdog).
	FlightDump io.Writer
	// SampleEvery forwards to exec.Options.SampleEvery: every Nth queued
	// delivery per emitting loop is latency-sampled; 0 disables sampling.
	SampleEvery int
	// Checkpoint enables periodic incremental snapshots of keyed operator
	// state per PE, with exactly-once stateful recovery (restore + replay)
	// when a quarantined operator is released. Off by default.
	Checkpoint CheckpointOptions
}

// CheckpointOptions configure per-PE state checkpointing.
type CheckpointOptions struct {
	// Enabled turns checkpointing on.
	Enabled bool
	// Dir is where each PE's checkpoint log lives (pe<N>.ckpt); empty
	// means an in-memory store (tests, simulation — no durability).
	Dir string
	// Interval between checkpoints (default 1s).
	Interval time.Duration
	// FullEvery forces a full snapshot every n-th checkpoint (default 16).
	FullEvery int
}

// PERuntime is one launched processing element.
type PERuntime struct {
	// Plan is the PE's slice of the job graph.
	Plan *Plan
	// Eng is the PE's live engine.
	Eng *exec.Engine
	// Coord is the PE's elastic coordinator (nil when disabled).
	Coord *core.Coordinator
	// Watchdog is the PE's health monitor (nil unless enabled).
	Watchdog *monitor.Watchdog
	// Reg is the PE's telemetry registry (const label pe="N"); every engine,
	// transport, and watchdog series lives here.
	Reg *obs.Registry
	// Ckpt is the PE's checkpoint coordinator (nil unless enabled).
	Ckpt *exec.Checkpointer

	cancel context.CancelFunc
	done   chan struct{}
}

// Job is a launched multi-PE deployment: each PE runs its own engine and
// adapts independently; cross-PE streams run over TCP.
type Job struct {
	PEs []*PERuntime

	crosses []CrossEdge
	conns   []net.Conn // both ends per stream, for shutdown

	// regs holds one telemetry registry per PE; rec is the shared flight
	// recorder; dump (guarded by dumpMu) receives automatic trip dumps.
	regs   []*obs.Registry
	rec    *obs.FlightRecorder
	dumpMu sync.Mutex
	dump   io.Writer

	mu      sync.Mutex
	started bool
	stopped bool
}

// Launch partitions the job graph per assign, wires every cross-PE stream
// over loopback TCP, and constructs one engine (plus coordinator) per PE.
// Call Start to begin execution and Stop to shut down.
func Launch(g *graph.Graph, assign Assignment, opts Options) (*Job, error) {
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.Checkpoint.Enabled && opts.Transport.RetransmitCapacity == 0 {
		// With acks gated at the checkpoint floor, sustained throughput is
		// bounded by ring capacity per checkpoint interval; give the replay
		// window real headroom when the user has not sized it.
		opts.Transport.RetransmitCapacity = 1 << 15
	}
	plans, crosses, err := Partition(g, assign)
	if err != nil {
		return nil, err
	}
	rec := opts.Recorder
	if rec == nil {
		rec = obs.NewFlightRecorder(obs.DefaultFlightRecorderSize)
	}
	regs := make([]*obs.Registry, len(plans))
	for i := range regs {
		regs[i] = obs.NewRegistry(obs.Label{Key: "pe", Value: strconv.Itoa(i)})
	}
	job := &Job{crosses: crosses, regs: regs, rec: rec, dump: opts.FlightDump}
	if opts.Fault != nil {
		opts.Fault.SetObserver(func(ev fault.Event) {
			rec.Record(obs.EvFault, -1, int64(ev.Site), int64(ev.N), ev.Point.String())
		})
	}

	// Wire streams: co-located edges taking the in-process fast path skip
	// the network entirely; the rest get one listener per cross edge on the
	// receiving side, and the sending side dials.
	isLocal := func(ce CrossEdge) bool {
		if opts.LocalEdgeFor != nil {
			return opts.LocalEdgeFor(ce)
		}
		return opts.LocalEdges
	}
	listeners := make([]net.Listener, len(crosses))
	defer func() {
		for _, l := range listeners {
			if l != nil {
				_ = l.Close()
			}
		}
	}()
	for i, ce := range crosses {
		if isLocal(ce) {
			continue
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			job.closeConns()
			return nil, fmt.Errorf("pe: listen stream %d: %w", i, err)
		}
		listeners[i] = l
	}
	abort := func() {
		closeEndpoints(plans)
		job.closeConns()
	}
	for i, ce := range crosses {
		if isLocal(ce) {
			if err := wireLocalStream(plans, ce, opts, rec); err != nil {
				abort()
				return nil, fmt.Errorf("pe: wire local stream %d: %w", i, err)
			}
			continue
		}
		acceptCh := acceptOne(listeners[i])
		addr := listeners[i].Addr().String()
		sendConn, err := dialStream(addr, opts.DialTimeout)
		if err != nil {
			abort()
			return nil, fmt.Errorf("pe: dial stream %d: %w", i, err)
		}
		acc := <-acceptCh
		if acc.err != nil {
			_ = sendConn.Close()
			abort()
			return nil, fmt.Errorf("pe: accept stream %d: %w", i, acc.err)
		}
		job.conns = append(job.conns, sendConn, acc.conn)

		// Attach the endpoints to the matching stubs. The import adopts the
		// listener (it re-accepts the export's redials after a connection
		// death), so the deferred cleanup must not close it.
		sender := plans[ce.FromPE]
		for j, end := range sender.Exports {
			if end.Stream == ce.Stream {
				sender.exports[j].cfg = opts.Transport.withDefaults()
				sender.exports[j].inj = opts.Fault
				sender.exports[j].site = ce.Stream
				sender.exports[j].rec = rec
				sender.exports[j].recPE = int32(ce.FromPE)
				if err := sender.exports[j].connect(sendConn, addr); err != nil {
					_ = acc.conn.Close()
					abort()
					return nil, fmt.Errorf("pe: wire stream %d: %w", i, err)
				}
			}
		}
		receiver := plans[ce.ToPE]
		for j, end := range receiver.Imports {
			if end.Stream == ce.Stream {
				receiver.imports[j].rec = rec
				receiver.imports[j].recPE = int32(ce.ToPE)
				receiver.imports[j].site = ce.Stream
				receiver.imports[j].connect(acc.conn, listeners[i])
				listeners[i] = nil // adopted by the import
			}
		}
	}
	registerTransportMetrics(regs, plans, crosses)

	for _, plan := range plans {
		rt, err := NewPERuntime(plan, regs[plan.PE], rec, opts, job.dumpOnTrip)
		if err != nil {
			abort()
			return nil, err
		}
		job.PEs = append(job.PEs, rt)
	}
	return job, nil
}

// wireCheckpointer attaches a checkpoint coordinator to one PE: a durable
// file log (or in-memory store), and — when the PE has exactly one TCP
// import — the transport hooks that make recovery exactly-once: the cut is
// stamped with the import's emit watermark, acks upstream are gated at the
// last committed cut so the sender's retransmit ring retains the replay
// range, and recovery rewinds the import to the cut before readmitting
// tuples. A PE with multiple imports (or only local edges, which have no
// retransmit machinery) still checkpoints and restores, but recovery is
// restore-only: a single watermark cannot name a cut across several
// independent wire-sequence domains.
func wireCheckpointer(rt *PERuntime, plan *Plan, opts Options) error {
	var store state.Store
	if opts.Checkpoint.Dir != "" {
		log, err := state.OpenFileLog(filepath.Join(opts.Checkpoint.Dir, fmt.Sprintf("pe%d.ckpt", plan.PE)))
		if err != nil {
			return err
		}
		store = log
	} else {
		store = state.NewMemStore()
	}
	cfg := exec.CheckpointConfig{
		Store:     store,
		Interval:  opts.Checkpoint.Interval,
		FullEvery: opts.Checkpoint.FullEvery,
	}
	var tcp []*importSource
	for _, imp := range plan.imports {
		if imp.peer == nil {
			tcp = append(tcp, imp)
		}
	}
	if len(tcp) == 1 {
		imp := tcp[0]
		imp.gateAcks()
		cfg.Watermark = imp.emitWatermark
		cfg.Rewind = imp.rewind
		cfg.CommitFloor = imp.advanceAckFloor
	}
	rt.Ckpt = exec.NewCheckpointer(rt.Eng, cfg)
	return rt.Ckpt.Restore()
}

// wireLocalStream attaches both halves of an in-process edge: the export
// stages pooled clones into its ring exactly as for a TCP stream, and the
// peer import pops the ring directly. Wire-fault injection points (conn
// kill, frame corrupt, writer stall) live on the TCP path only, so
// opts.Fault is deliberately not attached; operator-level faults in the
// surrounding PEs are unaffected.
func wireLocalStream(plans []*Plan, ce CrossEdge, opts Options, rec *obs.FlightRecorder) error {
	sender := plans[ce.FromPE]
	var exp *exportOp
	for j, end := range sender.Exports {
		if end.Stream == ce.Stream {
			sender.exports[j].cfg = opts.Transport.withDefaults()
			sender.exports[j].site = ce.Stream
			sender.exports[j].rec = rec
			sender.exports[j].recPE = int32(ce.FromPE)
			if err := sender.exports[j].connectLocal(); err != nil {
				return err
			}
			exp = sender.exports[j]
		}
	}
	if exp == nil {
		return fmt.Errorf("pe: stream %d has no export endpoint", ce.Stream)
	}
	receiver := plans[ce.ToPE]
	for j, end := range receiver.Imports {
		if end.Stream == ce.Stream {
			receiver.imports[j].rec = rec
			receiver.imports[j].recPE = int32(ce.ToPE)
			receiver.imports[j].site = ce.Stream
			receiver.imports[j].connectLocal(exp)
		}
	}
	return nil
}

// closeEndpoints shuts down every stream endpoint wired so far; used when a
// launch fails partway, so no writer goroutine is left redialing a dead
// peer.
func closeEndpoints(plans []*Plan) {
	for _, plan := range plans {
		for _, exp := range plan.exports {
			exp.close()
		}
		for _, imp := range plan.imports {
			imp.close()
		}
	}
}

// Start launches every PE's engine and adaptation loop.
func (j *Job) Start(ctx context.Context) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started {
		return fmt.Errorf("pe: job already started")
	}
	j.started = true
	for _, rt := range j.PEs {
		if err := rt.Start(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Stop shuts the job down: adaptation loops first, then the streams (which
// unblocks import readers), then the engines. Safe to call more than once.
func (j *Job) Stop() {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	j.mu.Unlock()

	// Watchdogs first: stopping one thaws its coordinator, and the
	// shutdown below would otherwise look like one giant stall.
	for _, rt := range j.PEs {
		if rt.Watchdog != nil {
			rt.Watchdog.Stop()
		}
	}
	for _, rt := range j.PEs {
		if rt.cancel != nil {
			rt.cancel()
			<-rt.done
		}
	}
	// Checkpointers before the streams close: a recovery in flight may be
	// rewinding an import and needs the transport still wired.
	for _, rt := range j.PEs {
		if rt.Ckpt != nil {
			rt.Ckpt.Stop()
		}
	}
	for _, rt := range j.PEs {
		for _, exp := range rt.Plan.exports {
			exp.close()
		}
		for _, imp := range rt.Plan.imports {
			imp.close()
		}
	}
	j.closeConns()
	for _, rt := range j.PEs {
		rt.Eng.Stop()
	}
}

func (j *Job) closeConns() {
	for _, c := range j.conns {
		_ = c.Close()
	}
}

// Streams returns the job's cross-PE edges.
func (j *Job) Streams() []CrossEdge { return j.crosses }

// StreamStats returns every cross-PE stream's transport counters, send and
// receive side combined, in stream-id order. Safe to call while the job
// runs.
func (j *Job) StreamStats() []StreamStats {
	out := make([]StreamStats, 0, len(j.crosses))
	for _, ce := range j.crosses {
		st := StreamStats{Stream: ce.Stream, FromPE: ce.FromPE, ToPE: ce.ToPE}
		sender := j.PEs[ce.FromPE].Plan
		for i, end := range sender.Exports {
			if end.Stream == ce.Stream {
				exp := sender.exports[i]
				st.Local = exp.local.Load()
				st.Sent = exp.Sent()
				st.WireFrames = exp.WireFrames()
				st.Dropped = exp.Dropped()
				st.BytesSent = exp.BytesSent()
				st.Flushes = exp.Flushes()
				st.DrainSizes = exp.batches.snapshot()
				st.Retransmits = exp.Retransmits()
				st.Reconnects = exp.Reconnects()
				st.Unacked = exp.Unacked()
			}
		}
		receiver := j.PEs[ce.ToPE].Plan
		for i, end := range receiver.Imports {
			if end.Stream == ce.Stream {
				imp := receiver.imports[i]
				st.Received = imp.Received()
				st.BytesReceived = imp.BytesReceived()
				st.FramesReceived = imp.FramesReceived()
				st.DupsDropped = imp.DupsDropped()
				st.Resumes = imp.Resumes()
			}
		}
		out = append(out, st)
	}
	return out
}

// SchedStats returns every PE engine's work-stealing scheduler counters, in
// PE order. Safe to call while the job runs.
func (j *Job) SchedStats() []metrics.SchedSnapshot {
	out := make([]metrics.SchedSnapshot, 0, len(j.PEs))
	for _, rt := range j.PEs {
		out = append(out, rt.Eng.SchedStats())
	}
	return out
}

// CheckpointStats returns every PE checkpointer's counters, in PE order;
// zero values when checkpointing is disabled. Safe to call while the job
// runs.
func (j *Job) CheckpointStats() []exec.CheckpointStats {
	out := make([]exec.CheckpointStats, 0, len(j.PEs))
	for _, rt := range j.PEs {
		if rt.Ckpt != nil {
			out = append(out, rt.Ckpt.Stats())
		} else {
			out = append(out, exec.CheckpointStats{})
		}
	}
	return out
}

// Health returns every PE watchdog's status, in PE order; empty when the
// job runs without watchdogs.
func (j *Job) Health() []monitor.WatchdogStatus {
	var out []monitor.WatchdogStatus
	for _, rt := range j.PEs {
		if rt.Watchdog != nil {
			out = append(out, rt.Watchdog.Status())
		}
	}
	return out
}

// DrainAndStop gracefully shuts the job down: real sources stop emitting,
// in-flight tuples flow through every PE and stream to completion (bounded
// by timeout), then everything stops. It reports whether all PEs fully
// drained.
func (j *Job) DrainAndStop(timeout time.Duration) bool {
	for _, rt := range j.PEs {
		rt.Eng.Drain()
	}
	deadline := time.Now().Add(timeout)
	drained := false
	for time.Now().Before(deadline) {
		all := true
		for _, rt := range j.PEs {
			if !rt.Eng.WaitIdle(10 * time.Millisecond) {
				all = false
				break
			}
		}
		if all {
			// Idle twice in a row with a settle gap: tuples may still be
			// in flight on a TCP stream between PEs.
			time.Sleep(20 * time.Millisecond)
			again := true
			for _, rt := range j.PEs {
				if !rt.Eng.WaitIdle(10 * time.Millisecond) {
					again = false
					break
				}
			}
			if again {
				drained = true
				break
			}
		}
	}
	j.Stop()
	return drained
}
