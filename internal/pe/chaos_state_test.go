package pe

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// The chaos-state pipeline: PE0 runs the generator; PE1 imports the stream
// and runs keyer -> KeyedJoin -> Reorder -> byte-recording sink. The keyer
// splits every tuple into a build (key = seq mod K, value = seq) and a
// probe (key = (seq+1) mod K), so the join's answer for probe s is the
// value built K-1 tuples earlier — state that a recovery must restore
// exactly or the output bytes change. Probes of the first K-1 tuples find
// no build entry and are dropped (inner join), deterministically.
const (
	chaosStateTuples = 30000
	chaosStateKeys   = 16
)

// chaosStateWant is the released-output count: probes s in [K-1, n).
const chaosStateWant = chaosStateTuples - chaosStateKeys + 1

// splitKeyer fans one generated tuple into a build/probe pair. Stateless:
// replay simply re-runs it.
type splitKeyer struct{}

func (splitKeyer) Name() string { return "keyer" }

func (splitKeyer) Process(_ int, t *spl.Tuple, out spl.Emitter) {
	b := spl.AcquireTuple()
	b.Seq = t.Seq
	b.Key = t.Seq % chaosStateKeys
	b.Num1 = float64(t.Seq)
	out.Emit(0, b) // build side first: the table is updated before the probe
	t.Key = (t.Seq + 1) % chaosStateKeys
	out.Emit(1, t)
}

// byteSink records the released stream as bytes — the exactly-once check
// is literal byte equality against a fault-free run.
type byteSink struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	count atomic.Uint64
}

func (s *byteSink) Name() string { return "bytesink" }

func (s *byteSink) RecyclesTuples() {}

func (s *byteSink) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[:8], t.Seq)
	binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(t.Num2))
	s.mu.Lock()
	s.buf.Write(rec[:])
	s.mu.Unlock()
	s.count.Add(1)
}

func (s *byteSink) output() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

// goldenOutput is the analytically expected sink byte stream: for each
// probe s >= K-1, (s, float64(s+1-K)).
func goldenOutput() []byte {
	var buf bytes.Buffer
	for s := uint64(chaosStateKeys - 1); s < chaosStateTuples; s++ {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[:8], s)
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(float64(s+1-chaosStateKeys)))
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

func keyedJoinJob(t *testing.T) (*graph.Graph, *byteSink) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 16)
	gen.MaxTuples = chaosStateTuples
	src := g.AddSource(gen, spl.NewCostVar(10))
	kid := g.AddOperator(splitKeyer{}, spl.NewCostVar(10))
	if err := g.Connect(src, 0, kid, 0, 1); err != nil {
		t.Fatal(err)
	}
	jid := g.AddOperator(spl.NewKeyedJoin("join"), spl.NewCostVar(50))
	if err := g.Connect(kid, 0, jid, 1, 1); err != nil { // build port
		t.Fatal(err)
	}
	if err := g.Connect(kid, 1, jid, 0, 1); err != nil { // probe port
		t.Fatal(err)
	}
	rid := g.AddOperator(spl.NewReorder("reorder", chaosStateKeys-1, 4096), spl.NewCostVar(10))
	if err := g.Connect(jid, 0, rid, 0, 1); err != nil {
		t.Fatal(err)
	}
	sink := &byteSink{}
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(rid, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

// chaosStateExecOpts is the supervision config for stateful recovery runs.
// Budget 1: every contained panic engages the quarantine, so the lost
// invocation is always inside the replayed window. A budget of 2 would let
// the first panic drop a tuple with no recovery owed — at-most-once,
// today's behavior.
func chaosStateExecOpts() exec.Options {
	return exec.Options{
		PanicBudget:    1,
		QuarantineBase: 5 * time.Millisecond,
		QuarantineMax:  50 * time.Millisecond,
		PanicDecay:     time.Hour,
	}
}

// launchChaosState starts the two-PE job. checkpointing toggles the
// coordinator; arm is called between Launch and Start so fault sites can be
// resolved through the plan.
func launchChaosState(t *testing.T, inj *fault.Injector, checkpointing bool, arm func(*Job)) (*Job, *byteSink) {
	t.Helper()
	g, sink := keyedJoinJob(t)
	job, err := Launch(g, Assignment{0, 1, 1, 1, 1}, Options{
		DisableElasticity: true,
		// Backpressure instead of drops, and a small retransmit ring so the
		// generator cannot outrun the ack floor by more than one commit
		// interval — the run is forced through many checkpoint cycles.
		Transport: TransportConfig{BlockTimeout: time.Minute, RetransmitCapacity: 4096},
		Fault:     inj,
		Checkpoint: CheckpointOptions{
			Enabled:  checkpointing,
			Dir:      t.TempDir(),
			Interval: 10 * time.Millisecond,
		},
		Exec: chaosStateExecOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if arm != nil {
		arm(job)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	return job, sink
}

// waitSink waits until the sink count reaches want or stops growing.
func waitSink(t *testing.T, sink *byteSink, want uint64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	last, stagnant := uint64(0), 0
	for time.Now().Before(end) {
		n := sink.count.Load()
		if n >= want {
			return
		}
		if n == last {
			stagnant++
			if n > 0 && stagnant > 400 { // ~2s without progress
				return
			}
		} else {
			last, stagnant = n, 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosStateExactlyOnceByteIdentical is the acceptance test for
// stateful exactly-once recovery: with operator panics, connection kills,
// and checkpoint crashes injected mid-run, the released output must be
// byte-identical to a fault-free run — same tuples, same values, same
// order, no gaps, no duplicates.
func TestChaosStateExactlyOnceByteIdentical(t *testing.T) {
	golden := goldenOutput()

	// Fault-free baseline, checkpointing on. The injector is non-nil but
	// never armed so both runs execute in the same (uncompiled) mode.
	job, sink := launchChaosState(t, fault.New(1), true, nil)
	waitSink(t, sink, chaosStateWant, 60*time.Second)
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("fault-free run did not drain")
	}
	if !bytes.Equal(sink.output(), golden) {
		t.Fatalf("fault-free output differs from golden: %d bytes vs %d", len(sink.output()), len(golden))
	}

	// Faulted run: panics on the join past its budget (drop-then-restore
	// recovery), connection kills (retransmit from the ring), and a
	// checkpoint crash (torn epoch, never committed).
	inj := fault.New(42)
	job2, sink2 := launchChaosState(t, inj, true, func(j *Job) {
		joinSite := fault.OpSite(1, int(j.PEs[1].Plan.LocalOf[2]))
		inj.Arm(fault.OpPanic, joinSite, fault.Plan{EveryN: 4000, MaxFires: 3})
		inj.Arm(fault.ConnKill, 0, fault.Plan{EveryN: 2500, MaxFires: 2})
		inj.Arm(fault.CkptCrash, 1, fault.Plan{Nth: 2})
	})
	waitSink(t, sink2, chaosStateWant, 120*time.Second)
	stats := job2.CheckpointStats()
	if !job2.DrainAndStop(30 * time.Second) {
		t.Fatal("faulted run did not drain")
	}
	joinSite := fault.OpSite(1, int(job2.PEs[1].Plan.LocalOf[2]))
	if got := inj.Fires(fault.OpPanic, joinSite); got != 3 {
		t.Errorf("join panics fired %d times, want 3", got)
	}
	if got := inj.Fires(fault.ConnKill, 0); got != 2 {
		t.Errorf("conn kills fired %d times, want 2", got)
	}
	if got := inj.Fires(fault.CkptCrash, 1); got != 1 {
		t.Errorf("checkpoint crash fired %d times, want 1", got)
	}

	if !bytes.Equal(sink2.output(), golden) {
		a, b := sink2.output(), golden
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("faulted output not byte-identical to fault-free: %d vs %d bytes, first divergence at %d",
			len(a), len(b), i)
	}

	// The recovery machinery must actually have run: every panic tripped a
	// quarantine whose expiry restored state, and the crash was counted.
	sup := job2.PEs[1].Eng.Supervision()
	if sup.Quarantines != 3 {
		t.Errorf("quarantines = %d, want 3", sup.Quarantines)
	}
	st := stats[1]
	if st.Restores < 3 {
		t.Errorf("restores = %d, want >= 3 (one per quarantine recovery)", st.Restores)
	}
	if st.Errors == 0 {
		t.Error("checkpoint crash left no error count")
	}
	if st.Checkpoints == 0 {
		t.Error("no checkpoint ever committed")
	}
}

// TestChaosStateDisabledIsTodaysBehavior pins the compatibility baseline:
// with checkpointing off and no faults the output is unchanged, and the
// job runs exactly as before this subsystem existed (no ack gating, no
// coordinator).
func TestChaosStateDisabledIsTodaysBehavior(t *testing.T) {
	job, sink := launchChaosState(t, fault.New(7), false, nil)
	waitSink(t, sink, chaosStateWant, 60*time.Second)
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain with checkpointing disabled")
	}
	if !bytes.Equal(sink.output(), goldenOutput()) {
		t.Fatal("checkpoint-disabled output differs from golden")
	}
	for _, st := range job.CheckpointStats() {
		if st.Checkpoints != 0 || st.Restores != 0 {
			t.Fatalf("disabled job recorded checkpoint activity: %+v", st)
		}
	}
}

// TestChaosStateStorageFaultsDegradeGracefully injects the storage-level
// faults — a committed-but-corrupted record (CRC-skipped at load) and a
// torn read during restore — under a panic-triggered recovery. Byte
// identity is not promised on this path; what is promised: no harness
// panic, the decoder fails cleanly, the pipeline keeps flowing, and the
// released stream never duplicates or reorders a sequence.
func TestChaosStateStorageFaultsDegradeGracefully(t *testing.T) {
	inj := fault.New(23)
	job, sink := launchChaosState(t, inj, true, func(j *Job) {
		joinSite := fault.OpSite(1, int(j.PEs[1].Plan.LocalOf[2]))
		inj.Arm(fault.OpPanic, joinSite, fault.Plan{EveryN: 5000, MaxFires: 2})
		inj.Arm(fault.CkptCorrupt, 1, fault.Plan{Nth: 1})
		inj.Arm(fault.RestoreTorn, 1, fault.Plan{Nth: 1})
	})
	waitSink(t, sink, chaosStateWant, 60*time.Second)
	stats := job.CheckpointStats()
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain under storage faults")
	}
	out := sink.output()
	if len(out) == 0 || len(out)%16 != 0 {
		t.Fatalf("sink recorded %d bytes", len(out))
	}
	// Sequences must still be strictly increasing: replay may lose probes
	// to the degraded restore, but must never duplicate or reorder.
	prev := uint64(0)
	for off := 0; off < len(out); off += 16 {
		seq := binary.LittleEndian.Uint64(out[off : off+8])
		if off > 0 && seq <= prev {
			t.Fatalf("released seq %d after %d: duplicate or reorder under degraded recovery", seq, prev)
		}
		prev = seq
	}
	if stats[1].Restores == 0 {
		t.Error("no recovery ran: storage fault points never exercised")
	}
	if got := inj.Fires(fault.CkptCorrupt, 1); got != 1 {
		t.Errorf("checkpoint corruption fired %d times, want 1", got)
	}
}
