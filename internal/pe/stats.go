package pe

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// TransportConfig tunes the inter-PE stream transport. The zero value means
// defaults throughout, so existing callers keep their behaviour.
type TransportConfig struct {
	// RingCapacity is the staging ring between the PE's scheduler threads
	// and the stream's writer goroutine, rounded up to a power of two
	// (default 1024 tuples).
	RingCapacity int
	// FlushBytes flushes the wire buffer once this many encoded bytes are
	// pending (default 32 KiB), amortizing one syscall over many frames.
	FlushBytes int
	// MaxFlushDelay bounds how long an encoded frame may wait unflushed
	// while the stream stays busy (default 1ms). An idle stream flushes
	// immediately, so the delay only applies under a sustained trickle.
	MaxFlushDelay time.Duration
	// DropOnFull makes the export drop (and count) tuples when the staging
	// ring is full instead of applying backpressure — latency over
	// completeness. The default is bounded blocking: a full ring blocks the
	// producing scheduler thread up to BlockTimeout, matching the natural
	// backpressure of the old write-per-tuple path, then drops.
	DropOnFull bool
	// BlockTimeout bounds a blocked export when DropOnFull is unset
	// (default 1s); on expiry the tuple is dropped and counted.
	BlockTimeout time.Duration
}

const (
	defaultRingCapacity  = 1024
	defaultFlushBytes    = 32 << 10
	defaultMaxFlushDelay = time.Millisecond
	defaultBlockTimeout  = time.Second
)

// withDefaults fills zero fields and rounds the ring capacity up to the
// power of two the MPMC ring requires.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.RingCapacity <= 0 {
		c.RingCapacity = defaultRingCapacity
	}
	if c.RingCapacity < 2 {
		c.RingCapacity = 2
	}
	if c.RingCapacity&(c.RingCapacity-1) != 0 {
		c.RingCapacity = 1 << bits.Len(uint(c.RingCapacity))
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = defaultFlushBytes
	}
	if c.MaxFlushDelay <= 0 {
		c.MaxFlushDelay = defaultMaxFlushDelay
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = defaultBlockTimeout
	}
	return c
}

// batchHistBuckets is the number of log2 batch-size buckets: bucket i
// counts writer drains of [2^i, 2^(i+1)) tuples.
const batchHistBuckets = 8

// batchHist is a lock-free histogram of writer drain batch sizes; it shows
// whether the stream coalesces (high buckets) or runs tuple-at-a-time.
type batchHist [batchHistBuckets]atomic.Uint64

func (h *batchHist) record(n int) {
	if n <= 0 {
		return
	}
	i := bits.Len(uint(n)) - 1
	if i >= batchHistBuckets {
		i = batchHistBuckets - 1
	}
	h[i].Add(1)
}

// snapshot returns the bucket counts, or nil when nothing was recorded.
func (h *batchHist) snapshot() []uint64 {
	out := make([]uint64, batchHistBuckets)
	any := false
	for i := range h {
		out[i] = h[i].Load()
		any = any || out[i] != 0
	}
	if !any {
		return nil
	}
	return out
}

// StreamStats is one cross-PE stream's transport counters, send and receive
// side combined.
type StreamStats struct {
	// Stream identifies the cross edge; FromPE/ToPE are its endpoints.
	Stream int
	FromPE int
	ToPE   int

	// Send side: tuples encoded onto the wire, tuples dropped (stream not
	// wired, errored, or staging ring full past the blocking budget), wire
	// bytes written, explicit flush syscalls, and the writer's drain
	// batch-size histogram (log2 buckets).
	Sent       uint64
	Dropped    uint64
	BytesSent  uint64
	Flushes    uint64
	BatchSizes []uint64

	// Receive side: tuples delivered to the importing PE and wire bytes of
	// successfully decoded frames.
	Received      uint64
	BytesReceived uint64
}
