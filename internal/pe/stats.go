package pe

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// TransportConfig tunes the inter-PE stream transport. The zero value means
// defaults throughout, so existing callers keep their behaviour.
type TransportConfig struct {
	// RingCapacity is the staging ring between the PE's scheduler threads
	// and the stream's writer goroutine, rounded up to a power of two
	// (default 1024 tuples).
	RingCapacity int
	// FlushBytes flushes the wire buffer once this many encoded bytes are
	// pending (default 32 KiB), amortizing one syscall over many frames.
	FlushBytes int
	// MaxFlushDelay bounds how long an encoded frame may wait unflushed
	// while the stream stays busy (default 1ms). An idle stream flushes
	// immediately, so the delay only applies under a sustained trickle.
	MaxFlushDelay time.Duration
	// DropOnFull makes the export drop (and count) tuples when the staging
	// ring is full instead of applying backpressure — latency over
	// completeness. The default is bounded blocking: a full ring blocks the
	// producing scheduler thread up to BlockTimeout, matching the natural
	// backpressure of the old write-per-tuple path, then drops.
	DropOnFull bool
	// BlockTimeout bounds a blocked export when DropOnFull is unset
	// (default 1s); on expiry the tuple is dropped and counted.
	BlockTimeout time.Duration
	// RetransmitCapacity sizes the export's retransmit window — the encoded
	// frames held until the receiver acknowledges them, rounded up to a
	// power of two (default 1024 frames). It bounds both resume traffic
	// after a reconnect and the memory pinned per stream; a full window
	// blocks the writer until acknowledgements arrive.
	RetransmitCapacity int
	// ReconnectBaseDelay/ReconnectMaxDelay bound the export's redial
	// backoff after a lost connection: capped exponential growth from base
	// to max, with jitter (defaults 10ms / 500ms).
	ReconnectBaseDelay time.Duration
	ReconnectMaxDelay  time.Duration
	// PerTupleFrames selects the v1 wire format: one frame per tuple,
	// byte-identical to the pre-batch transport (the A/B switch behind
	// streamrun's -wirebatch flag). The default encodes each writer drain
	// as one v2 batch frame, amortizing header, retransmit-slot, and
	// buffer-append costs across the batch.
	PerTupleFrames bool
}

const (
	defaultRingCapacity       = 1024
	defaultFlushBytes         = 32 << 10
	defaultMaxFlushDelay      = time.Millisecond
	defaultBlockTimeout       = time.Second
	defaultRetransmitCapacity = 1024
	defaultReconnectBase      = 10 * time.Millisecond
	defaultReconnectMax       = 500 * time.Millisecond
)

// withDefaults fills zero fields and rounds the ring capacity up to the
// power of two the MPMC ring requires.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.RingCapacity <= 0 {
		c.RingCapacity = defaultRingCapacity
	}
	if c.RingCapacity < 2 {
		c.RingCapacity = 2
	}
	if c.RingCapacity&(c.RingCapacity-1) != 0 {
		c.RingCapacity = 1 << bits.Len(uint(c.RingCapacity))
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = defaultFlushBytes
	}
	if c.MaxFlushDelay <= 0 {
		c.MaxFlushDelay = defaultMaxFlushDelay
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = defaultBlockTimeout
	}
	if c.RetransmitCapacity <= 0 {
		c.RetransmitCapacity = defaultRetransmitCapacity
	}
	if c.RetransmitCapacity < 2 {
		c.RetransmitCapacity = 2
	}
	if c.RetransmitCapacity&(c.RetransmitCapacity-1) != 0 {
		c.RetransmitCapacity = 1 << bits.Len(uint(c.RetransmitCapacity))
	}
	if c.ReconnectBaseDelay <= 0 {
		c.ReconnectBaseDelay = defaultReconnectBase
	}
	if c.ReconnectMaxDelay < c.ReconnectBaseDelay {
		c.ReconnectMaxDelay = defaultReconnectMax
	}
	if c.ReconnectMaxDelay < c.ReconnectBaseDelay {
		c.ReconnectMaxDelay = c.ReconnectBaseDelay
	}
	return c
}

// batchHistBuckets is the number of log2 batch-size buckets: bucket i
// counts writer drains of [2^i, 2^(i+1)) tuples.
const batchHistBuckets = 8

// batchHist is a lock-free histogram of writer drain batch sizes; it shows
// whether the stream coalesces (high buckets) or runs tuple-at-a-time.
type batchHist [batchHistBuckets]atomic.Uint64

func (h *batchHist) record(n int) {
	if n <= 0 {
		return
	}
	i := bits.Len(uint(n)) - 1
	if i >= batchHistBuckets {
		i = batchHistBuckets - 1
	}
	h[i].Add(1)
}

// snapshot returns the bucket counts, or nil when nothing was recorded.
func (h *batchHist) snapshot() []uint64 {
	out := make([]uint64, batchHistBuckets)
	any := false
	for i := range h {
		out[i] = h[i].Load()
		any = any || out[i] != 0
	}
	if !any {
		return nil
	}
	return out
}

// StreamStats is one cross-PE stream's transport counters, send and receive
// side combined.
type StreamStats struct {
	// Stream identifies the cross edge; FromPE/ToPE are its endpoints.
	Stream int
	FromPE int
	ToPE   int

	// Local reports the in-process fast path: tuples crossed as direct ring
	// handoffs, so Sent/Received/Dropped/DrainSizes are live but the
	// wire-only counters (bytes, frames, flushes, retransmits, reconnects,
	// dups, resumes) are truthfully zero.
	Local bool

	// Send side: tuples encoded onto the wire, wire frames staged (one per
	// batch by default, one per tuple with PerTupleFrames — Sent/WireFrames
	// is the batch amortization ratio, WireFrames/Flushes the frames per
	// flush), tuples dropped (stream not wired, errored, or staging ring
	// full past the blocking budget), wire bytes written, explicit flush
	// syscalls, and the writer's staging-ring drain-size histogram (log2
	// buckets). DrainSizes counts ring drains, not flushes: one drain spans
	// several frames only when it overflows maxFrameBytes, and several
	// drains usually coalesce into one flush.
	Sent       uint64
	WireFrames uint64
	Dropped    uint64
	BytesSent  uint64
	Flushes    uint64
	DrainSizes []uint64

	// Send-side recovery: frame writes beyond each frame's first (resume
	// traffic after reconnects), successful re-attaches after a lost
	// connection, and staged frames never acknowledged when the stream
	// closed (delivery unknown — counted separately, never as dropped).
	Retransmits uint64
	Reconnects  uint64
	Unacked     uint64

	// Receive side: tuples delivered to the importing PE, wire bytes and
	// wire frames of successfully decoded frames.
	Received       uint64
	BytesReceived  uint64
	FramesReceived uint64

	// Receive-side recovery: retransmitted duplicate tuples dropped by
	// sequence dedup (at-least-once wire made exactly-once downstream) and
	// connections re-accepted after the first.
	DupsDropped uint64
	Resumes     uint64
}
