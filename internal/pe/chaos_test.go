package pe

import (
	"bytes"
	"context"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/monitor"
)

// chaosResult is everything one seeded chaos run produces, for the
// determinism comparison and the conservation checks.
type chaosResult struct {
	sink    *seqSink
	stream  StreamStats
	sup     exec.SupervisionStats
	panics  uint64
	log     []byte
	drained bool
}

// runChaosOnce runs the two-PE seqJob under a seeded injector that kills
// the stream's connection, corrupts frames on the wire, and panics the
// downstream work operator past its panic budget, then drains gracefully.
// perTuple selects the v1 frame-per-tuple wire (streamrun's
// -wirebatch=false); false runs the default v2 batch frames. Chaos hooks
// fire once per staged tuple in either mode, so the injector's event ranks —
// and therefore its log — are a pure function of the seed, not of the wire
// format.
func runChaosOnce(t *testing.T, seed int64, n uint64, perTuple bool) chaosResult {
	t.Helper()
	g, sink := seqJob(t, n)
	assign := Assignment{0, 0, 1, 1}
	inj := fault.New(seed)
	job, err := Launch(g, assign, Options{
		DisableElasticity: true,
		// Backpressure instead of drops: conservation must close exactly.
		Transport: TransportConfig{BlockTimeout: time.Minute, PerTupleFrames: perTuple},
		Fault:     inj,
		Exec: exec.Options{
			PanicBudget:    2,
			QuarantineBase: 2 * time.Millisecond,
			QuarantineMax:  20 * time.Millisecond,
			PanicDecay:     time.Hour, // no forgiveness mid-test: counts stay predictable
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arm after Launch so the downstream work operator's local node id can
	// be resolved through the plan; tuples only flow after Start, so no
	// events are lost. Global node 2 is the PE1-side work operator.
	wSite := fault.OpSite(1, int(job.PEs[1].Plan.LocalOf[2]))
	inj.Arm(fault.ConnKill, 0, fault.Plan{EveryN: 2500, MaxFires: 3})
	inj.Arm(fault.FrameCorrupt, 0, fault.Plan{EveryN: 3000, MaxFires: 2})
	inj.Arm(fault.OpPanic, wSite, fault.Plan{EveryN: 40, MaxFires: 6})

	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	// Every emitted tuple eventually lands somewhere countable: the sink,
	// a contained panic, or a quarantine drop.
	accounted := func() uint64 {
		return sink.count.Load() + job.PEs[1].Eng.OperatorPanics() +
			job.PEs[1].Eng.Supervision().Dropped
	}
	deadline := time.Now().Add(120 * time.Second)
	for accounted() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	res := chaosResult{sink: sink, drained: job.DrainAndStop(30 * time.Second)}
	res.stream = job.StreamStats()[0]
	res.sup = job.PEs[1].Eng.Supervision()
	res.panics = job.PEs[1].Eng.OperatorPanics()
	res.log = inj.LogBytes()
	if got := inj.Fires(fault.ConnKill, 0); got != 3 {
		t.Errorf("conn kills fired %d times, want 3", got)
	}
	if got := inj.Fires(fault.FrameCorrupt, 0); got != 2 {
		t.Errorf("frame corruptions fired %d times, want 2", got)
	}
	if got := inj.Fires(fault.OpPanic, wSite); got != 6 {
		t.Errorf("operator panics fired %d times, want 6", got)
	}
	return res
}

// TestChaosExactlyOnceUnderFaults is the acceptance test for the
// self-healing runtime: with connection kills, wire corruption, and
// operator panics injected mid-run — the corruptions landing mid-batch-frame
// on the default v2 wire — the stream still delivers exactly-once (no
// duplicates) and every emitted tuple is accounted for: delivered, counted
// as a contained panic, or counted as a quarantine drop. Running the same
// seed twice must produce a byte-identical fault log.
func TestChaosExactlyOnceUnderFaults(t *testing.T) {
	const n = 12000
	const seed = 42
	res := runChaosOnce(t, seed, n, false)

	if !res.drained {
		t.Fatal("job did not drain under injected faults")
	}
	if res.sink.dups != 0 {
		t.Fatalf("%d duplicated tuples reached the sink", res.sink.dups)
	}
	delivered := res.sink.count.Load()
	if total := delivered + res.panics + res.sup.Dropped; total != n {
		t.Fatalf("conservation broken: delivered %d + panics %d + quarantine drops %d = %d, want %d",
			delivered, res.panics, res.sup.Dropped, total, n)
	}
	st := res.stream
	if st.Sent != n || st.Received != n || st.Dropped != 0 {
		t.Fatalf("wire counters sent=%d received=%d dropped=%d, want %d/%d/0",
			st.Sent, st.Received, st.Dropped, n, n)
	}
	if st.Reconnects == 0 {
		t.Fatal("no reconnects recorded despite injected connection kills")
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmits recorded: reconnects did not resume from the ring")
	}
	if st.Resumes == 0 {
		t.Fatal("import never re-accepted a connection")
	}
	if res.sup.Quarantines == 0 {
		t.Fatal("panic budget never tripped a quarantine")
	}
	if res.sup.Releases == 0 {
		t.Fatal("no quarantine was ever released")
	}
	if res.sup.Dropped == 0 {
		t.Fatal("quarantine engaged but dropped nothing")
	}

	// Determinism artifact: an identical seed over identical per-site event
	// streams yields a byte-identical fault log.
	res2 := runChaosOnce(t, seed, n, false)
	if !bytes.Equal(res.log, res2.log) {
		t.Fatalf("fault logs differ across same-seed runs:\nrun1:\n%srun2:\n%s", res.log, res2.log)
	}
}

// TestChaosWireModeAB runs the full fault cocktail — connection kills and
// frame corruptions landing mid-batch-frame — once per wire mode at the same
// seed and pins the A/B contract of the -wirebatch switch: both modes
// deliver exactly-once with conservation closing exactly, the fault logs are
// byte-identical (event ranks depend on staging order, not framing), and the
// frame counters prove the framing actually differed — per-tuple stages one
// frame per tuple while batch mode amortizes, retransmits included.
func TestChaosWireModeAB(t *testing.T) {
	const n = 12000
	const seed = 42
	batch := runChaosOnce(t, seed, n, false)
	per := runChaosOnce(t, seed, n, true)

	for _, run := range []struct {
		name string
		res  chaosResult
	}{{"batch", batch}, {"pertuple", per}} {
		if !run.res.drained {
			t.Fatalf("%s: job did not drain under injected faults", run.name)
		}
		if run.res.sink.dups != 0 {
			t.Fatalf("%s: %d duplicated tuples reached the sink", run.name, run.res.sink.dups)
		}
		delivered := run.res.sink.count.Load()
		if total := delivered + run.res.panics + run.res.sup.Dropped; total != n {
			t.Fatalf("%s: conservation broken: delivered %d + panics %d + drops %d = %d, want %d",
				run.name, delivered, run.res.panics, run.res.sup.Dropped, total, n)
		}
		st := run.res.stream
		if st.Sent != n || st.Received != n || st.Dropped != 0 {
			t.Fatalf("%s: wire counters sent=%d received=%d dropped=%d, want %d/%d/0",
				run.name, st.Sent, st.Received, st.Dropped, n, n)
		}
	}

	// The injector saw the same event stream regardless of framing.
	if !bytes.Equal(batch.log, per.log) {
		t.Fatalf("fault logs differ across wire modes:\nbatch:\n%spertuple:\n%s", batch.log, per.log)
	}

	// Framing evidence: per-tuple mode stages exactly one frame per tuple;
	// batch mode must have amortized at least some drains into shared frames.
	if per.stream.WireFrames != per.stream.Sent {
		t.Fatalf("per-tuple mode staged %d frames for %d tuples, want equal",
			per.stream.WireFrames, per.stream.Sent)
	}
	if batch.stream.WireFrames >= batch.stream.Sent {
		t.Fatalf("batch mode staged %d frames for %d tuples; expected amortization",
			batch.stream.WireFrames, batch.stream.Sent)
	}
	if batch.stream.FramesReceived == 0 || per.stream.FramesReceived == 0 {
		t.Fatalf("import frame counters never moved: batch=%d pertuple=%d",
			batch.stream.FramesReceived, per.stream.FramesReceived)
	}
}

// TestChaosReconnectResumesFromRing kills the stream's connection exactly
// once mid-run and verifies the recovery machinery end to end: the import
// re-accepts, the export redials and retransmits the unacknowledged window,
// and the sink still sees every sequence number exactly once.
func TestChaosReconnectResumesFromRing(t *testing.T) {
	const n = 3000
	g, sink := seqJob(t, n)
	inj := fault.New(7)
	inj.Arm(fault.ConnKill, 0, fault.Plan{Nth: 500})
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{
		DisableElasticity: true,
		Transport:         TransportConfig{BlockTimeout: time.Minute},
		Fault:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain after the connection kill")
	}
	if got := inj.Fires(fault.ConnKill, 0); got != 1 {
		t.Fatalf("conn kill fired %d times, want 1", got)
	}
	if sink.dups != 0 {
		t.Fatalf("%d duplicated tuples", sink.dups)
	}
	if len(sink.seen) != n {
		t.Fatalf("received %d distinct tuples, want %d", len(sink.seen), n)
	}
	st := job.StreamStats()[0]
	if st.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", st.Reconnects)
	}
	if st.Resumes != 1 {
		t.Fatalf("import resumes = %d, want 1", st.Resumes)
	}
	if st.Retransmits == 0 {
		t.Fatal("reconnect did not retransmit from the ring")
	}
	if st.Sent != n || st.Received != n || st.Dropped != 0 {
		t.Fatalf("wire counters sent=%d received=%d dropped=%d, want %d/%d/0",
			st.Sent, st.Received, st.Dropped, n, n)
	}
}

// TestChaosWatchdogFreezesAdaptation stalls the export writer long enough
// for the watchdog to trip and verifies the full control loop: the PE's
// coordinator stops adapting (PhaseFrozen trace events with an unchanged
// configuration) while unhealthy, then thaws once the stall clears.
func TestChaosWatchdogFreezesAdaptation(t *testing.T) {
	g, _ := seqJob(t, 2_000_000) // effectively unbounded for this test's lifetime
	inj := fault.New(3)
	inj.Arm(fault.WriterStall, 0, fault.Plan{Nth: 200, Delay: 600 * time.Millisecond})
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{
		Exec:           exec.Options{AdaptPeriod: 20 * time.Millisecond},
		Elastic:        core.DefaultConfig(),
		Fault:          inj,
		EnableWatchdog: true,
		Watchdog: monitor.WatchdogConfig{
			Interval:       10 * time.Millisecond,
			UnhealthyAfter: 2,
			HealthyAfter:   4,
		},
		StallAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	defer job.Stop()

	wd := job.PEs[0].Watchdog
	deadline := time.Now().Add(30 * time.Second)
	for wd.Status().Trips == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if wd.Status().Trips == 0 {
		t.Fatal("watchdog never tripped on the injected writer stall")
	}
	for wd.Status().Recovers == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := wd.Status()
	if st.Recovers == 0 {
		t.Fatalf("watchdog never recovered after the stall cleared: %+v", st)
	}
	if st.LastCause == "" {
		t.Fatal("tripped watchdog recorded no cause")
	}

	// The coordinator must have observed the freeze: PhaseFrozen events in
	// the trace, and no configuration movement inside a frozen window.
	trace := job.PEs[0].Coord.Trace()
	frozen := 0
	for i, e := range trace {
		if e.Phase != core.PhaseFrozen {
			continue
		}
		frozen++
		if i > 0 && trace[i-1].Phase == core.PhaseFrozen {
			prev := trace[i-1]
			if e.Threads != prev.Threads || e.Queues != prev.Queues {
				t.Fatalf("configuration moved while frozen: %d/%d threads, %d/%d queues",
					prev.Threads, e.Threads, prev.Queues, e.Queues)
			}
		}
	}
	if frozen == 0 {
		t.Fatal("coordinator trace has no frozen events despite a watchdog trip")
	}
}

// TestChaosMixedLocalAndWireEdges splits the pipeline across three PEs and
// mixes delivery modes per edge via LocalEdgeFor: the PE0->PE1 edge takes
// the in-process fast path while the PE1->PE2 edge stays on TCP and has its
// connection killed mid-run. RACE_PKGS includes this package, so the mixed
// ring-handoff/wire traffic runs under -race. Conservation must close
// exactly on both edges: every tuple crosses each boundary once, the wire
// edge reconnects and resumes, and the local edge's wire counters stay zero.
func TestChaosMixedLocalAndWireEdges(t *testing.T) {
	const n = 8000
	g, sink := seqJob(t, n)
	inj := fault.New(19)
	job, err := Launch(g, Assignment{0, 1, 1, 2}, Options{
		DisableElasticity: true,
		Transport:         TransportConfig{BlockTimeout: time.Minute},
		Fault:             inj,
		LocalEdgeFor:      func(ce CrossEdge) bool { return ce.FromPE == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	var localStream, wireStream = -1, -1
	for _, ce := range job.Streams() {
		if ce.FromPE == 0 {
			localStream = ce.Stream
		} else {
			wireStream = ce.Stream
		}
	}
	if localStream < 0 || wireStream < 0 {
		t.Fatalf("expected one local and one wire stream, got %+v", job.Streams())
	}
	inj.Arm(fault.ConnKill, wireStream, fault.Plan{Nth: 2000})
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain with mixed edges under a connection kill")
	}
	if got := inj.Fires(fault.ConnKill, wireStream); got != 1 {
		t.Fatalf("conn kill fired %d times, want 1", got)
	}
	if sink.dups != 0 {
		t.Fatalf("%d duplicated tuples", sink.dups)
	}
	if len(sink.seen) != n {
		t.Fatalf("received %d distinct tuples, want %d", len(sink.seen), n)
	}
	for _, st := range job.StreamStats() {
		if st.Sent != n || st.Received != n || st.Dropped != 0 {
			t.Fatalf("stream %d counters sent=%d received=%d dropped=%d, want %d/%d/0",
				st.Stream, st.Sent, st.Received, st.Dropped, n, n)
		}
		switch st.Stream {
		case localStream:
			if !st.Local {
				t.Fatalf("stream %d not marked Local", st.Stream)
			}
			if st.BytesSent != 0 || st.Flushes != 0 || st.Reconnects != 0 || st.Resumes != 0 {
				t.Fatalf("local stream touched the wire: %+v", st)
			}
		case wireStream:
			if st.Local {
				t.Fatalf("stream %d marked Local but runs on TCP", st.Stream)
			}
			// Bytes need not agree exactly: the kill loses in-flight bytes
			// and the resume rewrites them, so sent >= received.
			if st.BytesSent == 0 || st.BytesReceived == 0 || st.BytesSent < st.BytesReceived {
				t.Fatalf("wire bytes implausible: sent %d received %d", st.BytesSent, st.BytesReceived)
			}
			if st.Reconnects != 1 || st.Resumes != 1 {
				t.Fatalf("wire edge recovery: reconnects=%d resumes=%d, want 1/1", st.Reconnects, st.Resumes)
			}
			if st.Retransmits == 0 {
				t.Fatal("wire edge reconnected without retransmitting from the ring")
			}
		}
	}
}

// TestChaosOperatorSlowdownContained injects per-invocation slowdowns and
// verifies the injector's delay class works through the engine hook without
// disturbing delivery.
func TestChaosOperatorSlowdownContained(t *testing.T) {
	const n = 400
	g, sink := seqJob(t, n)
	inj := fault.New(11)
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{
		DisableElasticity: true,
		Transport:         TransportConfig{BlockTimeout: time.Minute},
		Fault:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	wSite := fault.OpSite(1, int(job.PEs[1].Plan.LocalOf[2]))
	inj.Arm(fault.OpSlow, wSite, fault.Plan{EveryN: 100, MaxFires: 3, Delay: 20 * time.Millisecond})
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain with injected slowdowns")
	}
	if got := inj.Fires(fault.OpSlow, wSite); got != 3 {
		t.Fatalf("slowdowns fired %d times, want 3", got)
	}
	if sink.dups != 0 || len(sink.seen) != n {
		t.Fatalf("delivery disturbed: %d distinct, %d dups, want %d/0",
			len(sink.seen), sink.dups, n)
	}
}
