package pe

import (
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/obs"
	"streamelastic/internal/spl"
)

// TestFreezeParksWriterWithoutDrops pins the per-edge freeze contract the
// migration executor depends on: a frozen edge stops delivering, producers
// blocked on the full staging ring park on the thaw instead of timing out
// into the drop counter (even with a BlockTimeout far shorter than the
// freeze), and unfreezing releases every staged tuple in order.
func TestFreezeParksWriterWithoutDrops(t *testing.T) {
	send, recv := loopbackPair(t)
	exp := newExportOp("x")
	exp.cfg = TransportConfig{
		RingCapacity: 8,
		FlushBytes:   1,
		BlockTimeout: 30 * time.Millisecond,
	}.withDefaults()
	if err := exp.connect(send, ""); err != nil {
		t.Fatal(err)
	}
	defer exp.close()
	imp := newImportSource("i")
	imp.connect(recv, nil)
	defer imp.close()

	var got atomic.Uint64
	var seqs []uint64
	var lastErr atomic.Bool
	collect := spl.EmitterFunc(func(_ int, tp *spl.Tuple) {
		seqs = append(seqs, tp.Seq)
		got.Add(1)
		tp.Release()
	})
	drainStop := make(chan struct{})
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for {
			select {
			case <-drainStop:
				return
			default:
			}
			if !imp.Next(collect) {
				lastErr.Store(true)
				return
			}
		}
	}()
	defer func() { close(drainStop); <-drainDone }()

	const n = 20
	exp.freeze()
	staged := make(chan struct{})
	go func() {
		defer close(staged)
		for i := 0; i < n; i++ {
			tp := spl.AcquireTuple()
			tp.Seq = uint64(i)
			exp.Process(0, tp, nil)
			tp.Release()
		}
	}()

	// The ring (capacity 8) fills; the producer must park on the thaw, not
	// drop, even though BlockTimeout (30ms) elapses several times over.
	time.Sleep(150 * time.Millisecond)
	select {
	case <-staged:
		t.Fatal("producer finished staging 20 tuples into a frozen ring of 8: nothing parked")
	default:
	}
	if d := exp.Dropped(); d != 0 {
		t.Fatalf("frozen edge dropped %d tuples", d)
	}
	if g := got.Load(); g != 0 {
		t.Fatalf("frozen edge delivered %d tuples", g)
	}

	exp.unfreeze()
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	<-staged
	if g := got.Load(); g != n {
		t.Fatalf("delivered %d tuples after thaw, want %d", g, n)
	}
	if d := exp.Dropped(); d != 0 {
		t.Fatalf("dropped %d tuples across freeze/unfreeze", d)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seq[%d] = %d: reordered across the thaw", i, s)
		}
	}
}

// TestFreezeFrozenFlag pins freeze/unfreeze idempotence on an unconnected
// export (no writer to park — just the flag and thaw channel lifecycle).
func TestFreezeFrozenFlag(t *testing.T) {
	exp := newExportOp("x")
	exp.cfg = TransportConfig{}.withDefaults()
	if exp.frozen.Load() {
		t.Fatal("new export born frozen")
	}
	exp.freeze()
	exp.freeze() // idempotent
	if !exp.frozen.Load() {
		t.Fatal("freeze did not latch")
	}
	exp.unfreeze()
	exp.unfreeze() // idempotent
	if exp.frozen.Load() {
		t.Fatal("unfreeze did not clear")
	}
}

// TestTransportMetricsRebindOnChurn pins the fix for histogram registration
// on dynamically re-dialed streams: re-registering transport series for a
// replacement endpoint under the same (stream, dir, peer) labels must not
// panic (the old *Func registrars did) and must not skip — the series swap
// to the new endpoint's collectors, so a migrated edge's metrics follow the
// live endpoint instead of a retired one.
func TestTransportMetricsRebindOnChurn(t *testing.T) {
	r := obs.NewRegistry(obs.Label{Key: "pe", Value: "0"})

	expA := newExportOp("a")
	expA.cfg = TransportConfig{}.withDefaults()
	expA.batches[0].Store(7) // drain-size histogram bucket
	registerExportMetrics(r, expA, 3, "1")

	// Churn the edge: same stream id and peer, new endpoint object. Before
	// the Set* registrars this panicked on the duplicate histogram family.
	expB := newExportOp("b")
	expB.cfg = TransportConfig{}.withDefaults()
	expB.batches[0].Store(11)
	expB.batches[2].Store(1)
	registerExportMetrics(r, expB, 3, "1")

	var hists []obs.Sample
	for _, s := range r.Gather() {
		if s.Name == obs.MetricTransportDrainSize {
			hists = append(hists, s)
		}
	}
	if len(hists) != 1 {
		t.Fatalf("drain-size series after churn = %d, want exactly 1 (no stale duplicate)", len(hists))
	}
	h := hists[0].Hist
	if h == nil {
		t.Fatal("drain-size sample has no histogram snapshot")
	}
	if h.Count != 12 {
		t.Fatalf("histogram count = %d, want the replacement endpoint's 12", h.Count)
	}

	// A different peer label is a different series, not a rebind.
	expC := newExportOp("c")
	expC.cfg = TransportConfig{}.withDefaults()
	registerExportMetrics(r, expC, 3, "2")
	count := 0
	for _, s := range r.Gather() {
		if s.Name == obs.MetricTransportDrainSize {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("drain-size series across two peers = %d, want 2", count)
	}

	// Import side churns the same way.
	impA := newImportSource("ia")
	registerImportMetrics(r, impA, 3, "0")
	impB := newImportSource("ib")
	registerImportMetrics(r, impB, 3, "0")
	tuples := 0
	for _, s := range r.Gather() {
		if s.Name == obs.MetricTransportTuples {
			for _, l := range s.Labels {
				if l.Key == "dir" && l.Value == "import" {
					tuples++
				}
			}
		}
	}
	if tuples != 1 {
		t.Fatalf("import tuple series after churn = %d, want 1", tuples)
	}
}
