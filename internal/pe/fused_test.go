package pe

import (
	"testing"
)

// TestJobFusedRegionsAcrossPEs verifies region compilation stays active when
// a chain is split across processing elements: PE0 runs src -> w0 -> w1 ->
// export and PE1 runs import -> w2 -> w3 -> sink, both all-manual, so each
// side compiles a source-headed program (the export and the local sink are
// the terminal sink steps). Delivery must stay exact across the wire and
// both engines must actually take the compiled batch path.
func TestJobFusedRegionsAcrossPEs(t *testing.T) {
	const n = 3000
	g, sink := jobChain(t, 4, n)
	assign := Assignment{0, 0, 0, 1, 1, 1}
	job := launchAndWait(t, g, assign, Options{DisableElasticity: true}, sink, n)

	exp := job.PEs[0].Plan.exports[0]
	imp := job.PEs[1].Plan.imports[0]
	if exp.Sent() != n || exp.Dropped() != 0 {
		t.Fatalf("export sent %d dropped %d, want %d sent 0 dropped", exp.Sent(), exp.Dropped(), n)
	}
	if imp.Received() != n {
		t.Fatalf("import received %d, want %d", imp.Received(), n)
	}
	for i, s := range job.SchedStats() {
		if s.FusedTuples == 0 {
			t.Fatalf("PE %d never took the compiled region path (fused_tuples=0)", i)
		}
		if s.FusedTuples < s.FusedBatches {
			t.Fatalf("PE %d fused_tuples=%d < fused_batches=%d", i, s.FusedTuples, s.FusedBatches)
		}
	}
}

// TestJobFusedDisabledFallback is the control: with region compilation
// switched off via the exec options, the same job must still deliver every
// tuple while the fused counters stay at zero.
func TestJobFusedDisabledFallback(t *testing.T) {
	const n = 1500
	g, sink := jobChain(t, 4, n)
	assign := Assignment{0, 0, 0, 1, 1, 1}
	opts := Options{DisableElasticity: true}
	opts.Exec.DisableRegionCompile = true
	job := launchAndWait(t, g, assign, opts, sink, n)
	for i, s := range job.SchedStats() {
		if s.FusedTuples != 0 || s.FusedBatches != 0 {
			t.Fatalf("PE %d took the compiled path with compilation disabled: %+v", i, s)
		}
	}
}
