// Package graph models the operator graph of a processing element: nodes
// (operators) connected by edges (streams), with per-node cost hints and
// per-edge rate factors. It provides the structural analyses the engines
// need — topological order, steady-state tuple rates, and the partition of
// the graph into execution regions induced by a scheduler-queue placement.
package graph

import (
	"errors"
	"fmt"

	"streamelastic/internal/spl"
)

// NodeID identifies a node within a Graph. IDs are dense, starting at 0, in
// insertion order; the elastic controllers use them as indices into
// placement bitmaps and cost-metric slices.
type NodeID int

// Edge connects an output port of one node to an input port of another.
type Edge struct {
	From     NodeID
	FromPort int
	To       NodeID
	ToPort   int
	// RateFactor is the expected number of tuples emitted on this edge per
	// tuple processed by From. A tokenizer that emits ~8 words per page has
	// factor 8; a round-robin split of width W has factor 1/W per branch.
	RateFactor float64
}

// Node is one operator in the graph.
type Node struct {
	ID NodeID
	// Op is the operator implementation. It may be nil for model-only
	// graphs that are executed exclusively on the simulated machine.
	Op spl.Operator
	// Cost is the per-tuple compute cost in FLOPs. It is shared with the
	// node's Work operator when one exists, so workload phase changes
	// apply to live and simulated engines alike.
	Cost *spl.CostVar
	// Source marks nodes driven by a dedicated operator thread.
	Source bool
	// Contended marks operators serialized by an internal lock (for
	// example a counting sink); the simulated machine charges them a
	// contention penalty that grows with the number of active threads.
	Contended bool
	// Out lists outgoing edges in insertion order.
	Out []Edge
	// In lists incoming edges; populated by Finalize.
	In []Edge
}

// Graph is a directed acyclic operator graph. Construct it with AddSource,
// AddOperator and Connect, then call Finalize before handing it to an
// engine.
type Graph struct {
	nodes     []*Node
	topo      []NodeID
	rates     []float64
	finalized bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// AddSource adds a source node with the given operator and per-tuple cost.
// A nil cost is treated as zero FLOPs.
func (g *Graph) AddSource(op spl.Operator, cost *spl.CostVar) NodeID {
	return g.add(op, cost, true)
}

// AddOperator adds a non-source node with the given operator and per-tuple
// cost. A nil cost is treated as zero FLOPs.
func (g *Graph) AddOperator(op spl.Operator, cost *spl.CostVar) NodeID {
	return g.add(op, cost, false)
}

func (g *Graph) add(op spl.Operator, cost *spl.CostVar, source bool) NodeID {
	if cost == nil {
		cost = spl.NewCostVar(0)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, &Node{ID: id, Op: op, Cost: cost, Source: source})
	g.finalized = false
	return id
}

// SetContended marks node id as lock-contended.
func (g *Graph) SetContended(id NodeID) {
	g.nodes[id].Contended = true
}

// Connect adds an edge from node from's output port fromPort to node to's
// input port toPort with the given rate factor.
func (g *Graph) Connect(from NodeID, fromPort int, to NodeID, toPort int, rateFactor float64) error {
	if int(from) < 0 || int(from) >= len(g.nodes) || int(to) < 0 || int(to) >= len(g.nodes) {
		return fmt.Errorf("connect %d->%d: node out of range", from, to)
	}
	if from == to {
		return fmt.Errorf("connect %d->%d: self loop", from, to)
	}
	if g.nodes[to].Source {
		return fmt.Errorf("connect %d->%d: target is a source", from, to)
	}
	if rateFactor <= 0 {
		return fmt.Errorf("connect %d->%d: rate factor %v must be positive", from, to, rateFactor)
	}
	g.nodes[from].Out = append(g.nodes[from].Out, Edge{
		From: from, FromPort: fromPort, To: to, ToPort: toPort, RateFactor: rateFactor,
	})
	g.finalized = false
	return nil
}

// ErrCyclic is returned by Finalize when the graph contains a cycle.
var ErrCyclic = errors.New("graph contains a cycle")

// Finalize validates the graph (acyclic, every non-source reachable from a
// source) and computes the derived structures: incoming edge lists,
// topological order, and steady-state tuple rates. It must be called after
// construction and again after any structural change.
func (g *Graph) Finalize() error {
	n := len(g.nodes)
	if n == 0 {
		return errors.New("graph is empty")
	}
	for _, nd := range g.nodes {
		nd.In = nil
	}
	indeg := make([]int, n)
	for _, nd := range g.nodes {
		for _, e := range nd.Out {
			g.nodes[e.To].In = append(g.nodes[e.To].In, e)
			indeg[e.To]++
		}
	}
	hasSource := false
	queue := make([]NodeID, 0, n)
	for _, nd := range g.nodes {
		if indeg[nd.ID] == 0 {
			if !nd.Source {
				return fmt.Errorf("node %d (%s) has no inputs but is not a source", nd.ID, nodeName(nd))
			}
			hasSource = true
			queue = append(queue, nd.ID)
		} else if nd.Source {
			return fmt.Errorf("source node %d (%s) has inputs", nd.ID, nodeName(nd))
		}
	}
	if !hasSource {
		return errors.New("graph has no source")
	}
	topo := make([]NodeID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		topo = append(topo, id)
		for _, e := range g.nodes[id].Out {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(topo) != n {
		return ErrCyclic
	}
	g.topo = topo
	g.computeRates()
	g.finalized = true
	return nil
}

// computeRates propagates steady-state tuple rates from the sources. Each
// source is normalized to rate 1; a node's rate is the sum over incoming
// edges of the producer's rate times the edge's rate factor.
func (g *Graph) computeRates() {
	rates := make([]float64, len(g.nodes))
	for _, id := range g.topo {
		nd := g.nodes[id]
		if nd.Source {
			rates[id] = 1
		}
		for _, e := range nd.Out {
			rates[e.To] += rates[id] * e.RateFactor
		}
	}
	g.rates = rates
}

func nodeName(nd *Node) string {
	if nd.Op != nil {
		return nd.Op.Name()
	}
	return "model-only"
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Topo returns the node ids in topological order. Finalize must have been
// called.
func (g *Graph) Topo() []NodeID { return g.topo }

// Finalized reports whether Finalize has run since the last mutation.
func (g *Graph) Finalized() bool { return g.finalized }

// Rates returns the steady-state tuple rate of every node relative to a
// per-source emission rate of 1. Finalize must have been called. The
// returned slice is shared; callers must not modify it.
func (g *Graph) Rates() []float64 { return g.rates }

// Sources returns the ids of all source nodes.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for _, nd := range g.nodes {
		if nd.Source {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Sinks returns the ids of all nodes with no outgoing edges.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for _, nd := range g.nodes {
		if len(nd.Out) == 0 {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Costs returns the current per-node cost in FLOPs per tuple.
func (g *Graph) Costs() []float64 {
	out := make([]float64, len(g.nodes))
	for i, nd := range g.nodes {
		out[i] = nd.Cost.FLOPs()
	}
	return out
}
