package graph

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"streamelastic/internal/spl"
)

// chain builds a finalized linear pipeline of n nodes (first is the source).
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	prev := g.AddSource(nil, spl.NewCostVar(1))
	for i := 1; i < n; i++ {
		id := g.AddOperator(nil, spl.NewCostVar(1))
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFinalizeEmptyGraph(t *testing.T) {
	if err := New().Finalize(); err == nil {
		t.Fatal("finalizing an empty graph succeeded")
	}
}

func TestFinalizeRejectsNoSource(t *testing.T) {
	g := New()
	a := g.AddOperator(nil, nil)
	b := g.AddOperator(nil, nil)
	if err := g.Connect(a, 0, b, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err == nil {
		t.Fatal("graph without a source finalized")
	}
}

func TestFinalizeRejectsCycle(t *testing.T) {
	g := New()
	s := g.AddSource(nil, nil)
	a := g.AddOperator(nil, nil)
	b := g.AddOperator(nil, nil)
	for _, c := range [][2]NodeID{{s, a}, {a, b}, {b, a}} {
		if err := g.Connect(c[0], 0, c[1], 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("finalize error = %v, want ErrCyclic", err)
	}
}

func TestConnectValidation(t *testing.T) {
	g := New()
	s := g.AddSource(nil, nil)
	a := g.AddOperator(nil, nil)
	cases := []struct {
		name string
		err  error
	}{
		{"out of range", g.Connect(s, 0, NodeID(99), 0, 1)},
		{"self loop", g.Connect(a, 0, a, 0, 1)},
		{"into source", g.Connect(a, 0, s, 0, 1)},
		{"zero rate", g.Connect(s, 0, a, 0, 0)},
		{"negative rate", g.Connect(s, 0, a, 0, -1)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: Connect succeeded, want error", c.name)
		}
	}
}

func TestFinalizeRejectsSourceWithInputs(t *testing.T) {
	g := New()
	s1 := g.AddSource(nil, nil)
	s2 := g.AddSource(nil, nil)
	// Bypass Connect's source check by connecting via an operator first:
	// Connect itself rejects edges into sources, so verify that too.
	if err := g.Connect(s1, 0, s2, 0, 1); err == nil {
		t.Fatal("Connect allowed an edge into a source")
	}
}

func TestFinalizeRejectsOrphanOperator(t *testing.T) {
	g := New()
	g.AddSource(nil, nil)
	g.AddOperator(nil, nil) // never connected
	if err := g.Finalize(); err == nil {
		t.Fatal("graph with an orphan non-source operator finalized")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := chain(t, 10)
	pos := make(map[NodeID]int)
	for i, id := range g.Topo() {
		pos[id] = i
	}
	for _, nd := range g.nodes {
		for _, e := range nd.Out {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %d->%d violates topo order", e.From, e.To)
			}
		}
	}
}

func TestRatesPipeline(t *testing.T) {
	g := chain(t, 5)
	for i, r := range g.Rates() {
		if r != 1 {
			t.Fatalf("node %d rate = %v, want 1", i, r)
		}
	}
}

func TestRatesSplitAndExpand(t *testing.T) {
	g := New()
	src := g.AddSource(nil, nil)
	tok := g.AddOperator(nil, nil) // emits 8 tuples per input
	split := g.AddOperator(nil, nil)
	w0 := g.AddOperator(nil, nil)
	w1 := g.AddOperator(nil, nil)
	snk := g.AddOperator(nil, nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(src, 0, tok, 0, 1))
	must(g.Connect(tok, 0, split, 0, 8))
	must(g.Connect(split, 0, w0, 0, 0.5))
	must(g.Connect(split, 1, w1, 0, 0.5))
	must(g.Connect(w0, 0, snk, 0, 1))
	must(g.Connect(w1, 0, snk, 0, 1))
	must(g.Finalize())
	r := g.Rates()
	if r[tok] != 1 || r[split] != 8 {
		t.Fatalf("rates tok=%v split=%v, want 1 and 8", r[tok], r[split])
	}
	if r[w0] != 4 || r[w1] != 4 {
		t.Fatalf("worker rates %v,%v, want 4,4", r[w0], r[w1])
	}
	if r[snk] != 8 {
		t.Fatalf("sink rate %v, want 8", r[snk])
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := chain(t, 4)
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sinks = %v, want [3]", got)
	}
}

func TestCostsReflectCostVars(t *testing.T) {
	g := New()
	cv := spl.NewCostVar(100)
	s := g.AddSource(nil, cv)
	a := g.AddOperator(nil, nil)
	if err := g.Connect(s, 0, a, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := g.Costs(); got[0] != 100 || got[1] != 0 {
		t.Fatalf("costs = %v, want [100 0]", got)
	}
	cv.Set(5)
	if got := g.Costs(); got[0] != 5 {
		t.Fatalf("costs after phase change = %v, want first element 5", got)
	}
}

func TestAttributePipelinePlacement(t *testing.T) {
	g := chain(t, 6)
	dyn := make([]bool, 6)
	dyn[3] = true
	a := Attribute(g, dyn)
	if len(a.Heads) != 2 {
		t.Fatalf("heads = %v, want source + 1 queue", a.Heads)
	}
	if a.SourceHeads != 1 {
		t.Fatalf("source heads = %d, want 1", a.SourceHeads)
	}
	// Nodes 0..2 belong to the source region; 3..5 to the queue region.
	for id := 0; id <= 2; id++ {
		if w := a.Dist[id][0]; w != 1 {
			t.Fatalf("node %d source-region weight %v, want 1", id, w)
		}
	}
	for id := 3; id <= 5; id++ {
		if w := a.Dist[id][1]; w != 1 {
			t.Fatalf("node %d queue-region weight %v, want 1", id, w)
		}
	}
}

func TestAttributeSharedSinkSplitsByInflow(t *testing.T) {
	// src -> split -> {w0 (dynamic), w1 (manual)} -> snk
	g := New()
	src := g.AddSource(nil, nil)
	split := g.AddOperator(nil, nil)
	w0 := g.AddOperator(nil, nil)
	w1 := g.AddOperator(nil, nil)
	snk := g.AddOperator(nil, nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(src, 0, split, 0, 1))
	must(g.Connect(split, 0, w0, 0, 0.5))
	must(g.Connect(split, 1, w1, 0, 0.5))
	must(g.Connect(w0, 0, snk, 0, 1))
	must(g.Connect(w1, 0, snk, 0, 1))
	must(g.Finalize())
	dyn := make([]bool, g.NumNodes())
	dyn[w0] = true
	a := Attribute(g, dyn)
	// The sink receives half its tuples from the dynamic region headed at
	// w0 and half from the source region (through w1).
	srcHead := a.HeadIndex[src]
	w0Head := a.HeadIndex[w0]
	if math.Abs(a.Dist[snk][srcHead]-0.5) > 1e-12 || math.Abs(a.Dist[snk][w0Head]-0.5) > 1e-12 {
		t.Fatalf("sink attribution = %v, want 0.5/0.5", a.Dist[snk])
	}
}

func TestAttributeDynamicSourceFlagIgnored(t *testing.T) {
	g := chain(t, 3)
	dyn := []bool{true, false, false}
	a := Attribute(g, dyn)
	if len(a.Heads) != 1 {
		t.Fatalf("dynamic flag on source created a queue head: %v", a.Heads)
	}
}

func TestQueueCount(t *testing.T) {
	g := chain(t, 5)
	dyn := []bool{true, true, false, true, false}
	// Node 0 is the source: its flag must not count.
	if got := QueueCount(g, dyn); got != 2 {
		t.Fatalf("QueueCount = %d, want 2", got)
	}
}

// TestAttributeWeightsSumToOne is a property test: on random layered DAGs,
// every node's attribution weights must sum to 1 for any placement.
func TestAttributeWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(t, rng)
		dyn := make([]bool, g.NumNodes())
		for i := range dyn {
			dyn[i] = rng.Intn(2) == 0
		}
		a := Attribute(g, dyn)
		for id := 0; id < g.NumNodes(); id++ {
			sum := 0.0
			for _, w := range a.Dist[id] {
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("trial %d node %d attribution sums to %v", trial, id, sum)
			}
		}
	}
}

// randomDAG builds a random layered DAG with one source and full
// reachability.
func randomDAG(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	g := New()
	layers := 2 + rng.Intn(4)
	var prev []NodeID
	src := g.AddSource(nil, nil)
	prev = []NodeID{src}
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(3)
		var cur []NodeID
		for w := 0; w < width; w++ {
			id := g.AddOperator(nil, nil)
			// Connect from at least one node of the previous layer.
			from := prev[rng.Intn(len(prev))]
			if err := g.Connect(from, 0, id, 0, 0.5+rng.Float64()); err != nil {
				t.Fatal(err)
			}
			// Possibly one extra in-edge.
			if len(prev) > 1 && rng.Intn(2) == 0 {
				from2 := prev[rng.Intn(len(prev))]
				if from2 != from {
					if err := g.Connect(from2, 0, id, 0, 0.5+rng.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteDOT(t *testing.T) {
	g := chain(t, 4)
	dyn := []bool{false, false, true, false}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, dyn); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph streams", "rankdir=LR",
		"shape=house",    // the source
		"shape=invhouse", // the sink
		"peripheries=2",  // the dynamic operator
		"n0 -> n1", "n2 -> n3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Without a placement, no doubled boxes.
	sb.Reset()
	if err := g.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "peripheries=2") {
		t.Fatal("nil placement produced dynamic markers")
	}
}

func TestWriteDOTRateLabels(t *testing.T) {
	g := New()
	s := g.AddSource(nil, nil)
	a := g.AddOperator(nil, nil)
	if err := g.Connect(s, 0, a, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x0.5") {
		t.Fatalf("rate label missing:\n%s", sb.String())
	}
}
