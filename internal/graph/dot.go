package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for visualization.
// When placement is non-nil, dynamic operators (those with scheduler
// queues) are drawn as doubled boxes; sources are houses, sinks inverted
// houses.
func (g *Graph) WriteDOT(w io.Writer, placement []bool) error {
	if _, err := fmt.Fprintln(w, "digraph streams {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR;"); err != nil {
		return err
	}
	for _, nd := range g.nodes {
		shape := "box"
		switch {
		case nd.Source:
			shape = "house"
		case len(nd.Out) == 0:
			shape = "invhouse"
		}
		peripheries := 1
		if placement != nil && int(nd.ID) < len(placement) && placement[nd.ID] && !nd.Source {
			peripheries = 2
		}
		label := nodeName(nd)
		cost := nd.Cost.FLOPs()
		if cost > 0 {
			label = fmt.Sprintf("%s\\n%.0f FLOPs", label, cost)
		}
		_, err := fmt.Fprintf(w, "  n%d [label=\"%s\" shape=%s peripheries=%d];\n",
			nd.ID, label, shape, peripheries)
		if err != nil {
			return err
		}
	}
	for _, nd := range g.nodes {
		for _, e := range nd.Out {
			attrs := ""
			if e.RateFactor != 1 {
				attrs = fmt.Sprintf(" [label=\"x%.2g\"]", e.RateFactor)
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.From, e.To, attrs); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
