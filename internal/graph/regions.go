package graph

// A scheduler-queue placement partitions the graph into execution regions.
// Region heads are the sources (each driven by its own operator thread) and
// the dynamic nodes (each fronted by a scheduler queue and executed by the
// scheduler-thread pool). A manual (non-head) node is executed inline by
// whichever thread delivers a tuple to it, so when several regions feed it,
// its work is split across those regions in proportion to tuple inflow.
// Attribution captures that split; the simulated machine turns it into
// per-region service times.

// Attribution maps every node to a weight distribution over region heads
// for a given placement.
type Attribution struct {
	// Heads lists the region heads: all sources first (in id order), then
	// all dynamic nodes (in id order).
	Heads []NodeID
	// HeadIndex maps a head node id to its index in Heads, or -1.
	HeadIndex []int
	// Dist[node] maps head index to the fraction of the node's tuples that
	// arrive via that head's region. Weights sum to 1 for every node
	// reachable from a source.
	Dist []map[int]float64
	// SourceHeads is the number of leading entries of Heads that are
	// sources.
	SourceHeads int
}

// Attribute computes the region attribution for the placement dynamic,
// where dynamic[i] reports whether node i is fronted by a scheduler queue.
// Dynamic flags on source nodes are ignored: sources always run on their
// own operator threads. The graph must be finalized.
func Attribute(g *Graph, dynamic []bool) *Attribution {
	n := g.NumNodes()
	a := &Attribution{
		HeadIndex: make([]int, n),
		Dist:      make([]map[int]float64, n),
	}
	for i := range a.HeadIndex {
		a.HeadIndex[i] = -1
	}
	for _, nd := range g.nodes {
		if nd.Source {
			a.HeadIndex[nd.ID] = len(a.Heads)
			a.Heads = append(a.Heads, nd.ID)
		}
	}
	a.SourceHeads = len(a.Heads)
	for _, nd := range g.nodes {
		if !nd.Source && dynamic[nd.ID] {
			a.HeadIndex[nd.ID] = len(a.Heads)
			a.Heads = append(a.Heads, nd.ID)
		}
	}
	rates := g.Rates()
	for _, id := range g.topo {
		nd := g.nodes[id]
		if hi := a.HeadIndex[id]; hi >= 0 {
			a.Dist[id] = map[int]float64{hi: 1}
			continue
		}
		total := 0.0
		for _, e := range nd.In {
			total += rates[e.From] * e.RateFactor
		}
		dist := make(map[int]float64, 2)
		if total > 0 {
			for _, e := range nd.In {
				w := rates[e.From] * e.RateFactor / total
				for h, f := range a.Dist[e.From] {
					dist[h] += w * f
				}
			}
		}
		a.Dist[id] = dist
	}
	return a
}

// QueueCount returns the number of scheduler queues a placement induces:
// one per dynamic non-source node.
func QueueCount(g *Graph, dynamic []bool) int {
	q := 0
	for _, nd := range g.nodes {
		if !nd.Source && dynamic[nd.ID] {
			q++
		}
	}
	return q
}
