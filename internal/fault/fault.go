// Package fault is a deterministic, seeded fault injector for chaos-testing
// the runtime's recovery paths. Hook points threaded through internal/exec
// (operator panic, operator slowdown) and internal/pe (frame corruption,
// connection kill, writer stall) consult an Injector; an unarmed or nil
// Injector costs one nil check on the hot path.
//
// Determinism is the design center: whether event n at a site fires is a
// pure function of (seed, point, site, n), independent of goroutine
// interleaving, so two runs with the same seed and the same per-site event
// streams inject the same faults — the fire log serializes to identical
// bytes. Wall-clock never participates in a fire decision.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies a class of injectable fault.
type Point uint8

// Injection points.
const (
	// OpPanic panics an operator invocation (contained by the engine's
	// recover and charged to the operator's panic budget).
	OpPanic Point = iota
	// OpSlow sleeps before an operator invocation, simulating a degraded
	// operator.
	OpSlow
	// FrameCorrupt corrupts one encoded frame on an export stream; the
	// receiver rejects it and resets the connection.
	FrameCorrupt
	// ConnKill closes an export stream's connection mid-run, forcing a
	// redial and retransmit-ring resume.
	ConnKill
	// WriterStall sleeps the export writer goroutine, simulating a wedged
	// writer for the watchdog to detect.
	WriterStall
	// CkptCrash aborts a checkpoint epoch mid-write (a torn append, no
	// commit record), so recovery must fall back to the previous epoch.
	CkptCrash
	// CkptCorrupt flips bytes in one checkpoint record before it is
	// appended; the restore path must detect it via CRC and skip it.
	CkptCorrupt
	// RestoreTorn truncates one record's payload during restore,
	// simulating a torn read; restore must degrade gracefully, never
	// panic.
	RestoreTorn
	numPoints
)

// String returns the point's stable log label.
func (p Point) String() string {
	switch p {
	case OpPanic:
		return "op-panic"
	case OpSlow:
		return "op-slow"
	case FrameCorrupt:
		return "frame-corrupt"
	case ConnKill:
		return "conn-kill"
	case WriterStall:
		return "writer-stall"
	case CkptCrash:
		return "ckpt-crash"
	case CkptCorrupt:
		return "ckpt-corrupt"
	case RestoreTorn:
		return "restore-torn"
	}
	return fmt.Sprintf("point-%d", uint8(p))
}

// opSiteStride separates the operator-site namespaces of different PEs:
// operator sites are PE*opSiteStride + local node id. Transport points use
// the stream id directly; the Point dimension keeps the namespaces from
// colliding.
const opSiteStride = 1 << 16

// OpSite returns the canonical injector site for operator node `node` of
// processing element `pe`.
func OpSite(pe, node int) int { return pe*opSiteStride + node }

// Plan describes when a site fires. Triggers combine (any match fires):
//
//   - EveryN fires events n = EveryN, 2*EveryN, ... — with MaxFires set,
//     only the first MaxFires multiples qualify, a rank-based cap that stays
//     deterministic under concurrent event arrival.
//   - Nth fires exactly event n == Nth.
//   - Rate fires each event with the given probability, decided by a seeded
//     hash of (seed, point, site, n); MaxFires caps rate-triggered fires via
//     a counter, which is deterministic only when the site's events are
//     sequential.
type Plan struct {
	Rate     float64
	Nth      uint64
	EveryN   uint64
	MaxFires uint64
	// Delay is the sleep applied by delay-class points (OpSlow,
	// WriterStall) when they fire.
	Delay time.Duration
}

// Event is one recorded fire: event number N at (Point, Site).
type Event struct {
	Point Point
	Site  int
	N     uint64
}

type siteKey struct {
	point Point
	site  int
}

type siteState struct {
	plan      Plan
	count     atomic.Uint64 // events observed at this site
	rateFires atomic.Uint64 // rate-triggered fires, for the MaxFires cap
}

// Injector decides fault fires. The zero value is not useful; construct
// with New. A nil *Injector is valid and never fires, so hook points need
// no guards beyond the pointer check.
type Injector struct {
	seed uint64

	// sites is copy-on-write: Arm swaps in a new map under mu, Fire loads
	// it with one atomic read.
	sites atomic.Pointer[map[siteKey]*siteState]

	mu       sync.Mutex
	log      []Event
	observer func(Event)
}

// New returns an injector whose rate decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed)}
}

// Arm installs (or replaces) the plan for one (point, site). Arm before the
// workload runs; arming mid-run is safe but the site's event counter does
// not reset.
func (in *Injector) Arm(p Point, site int, plan Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	old := in.sites.Load()
	next := make(map[siteKey]*siteState)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	k := siteKey{point: p, site: site}
	if prev, ok := next[k]; ok {
		prev.plan = plan
	} else {
		next[k] = &siteState{plan: plan}
	}
	in.sites.Store(&next)
}

// Fire records one event at (point, site) and reports whether the armed
// plan fires it. Unarmed sites (and nil injectors) never fire and keep no
// counters.
func (in *Injector) Fire(p Point, site int) bool {
	if in == nil {
		return false
	}
	sites := in.sites.Load()
	if sites == nil {
		return false
	}
	s := (*sites)[siteKey{point: p, site: site}]
	if s == nil {
		return false
	}
	n := s.count.Add(1)
	if !in.qualifies(s, p, site, n) {
		return false
	}
	ev := Event{Point: p, Site: site, N: n}
	in.mu.Lock()
	in.log = append(in.log, ev)
	obs := in.observer
	in.mu.Unlock()
	// The observer runs after the unlock so it may call back into the
	// injector (Events, Fires) without deadlocking.
	if obs != nil {
		obs(ev)
	}
	return true
}

// SetObserver installs fn to receive every fire as it is recorded — the
// flight recorder's feed of fault injections. fn must be safe for
// concurrent use; it runs outside the injector's lock.
func (in *Injector) SetObserver(fn func(Event)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.observer = fn
	in.mu.Unlock()
}

// FireDelay is Fire for delay-class points: it returns the plan's Delay
// when the event fires and 0 otherwise.
func (in *Injector) FireDelay(p Point, site int) time.Duration {
	if in == nil {
		return 0
	}
	if !in.Fire(p, site) {
		return 0
	}
	sites := in.sites.Load()
	s := (*sites)[siteKey{point: p, site: site}]
	return s.plan.Delay
}

func (in *Injector) qualifies(s *siteState, p Point, site int, n uint64) bool {
	pl := s.plan
	if pl.Nth != 0 && n == pl.Nth {
		return true
	}
	if pl.EveryN != 0 && n%pl.EveryN == 0 {
		if pl.MaxFires == 0 || n/pl.EveryN <= pl.MaxFires {
			return true
		}
	}
	if pl.Rate > 0 {
		threshold := uint64(pl.Rate * math.MaxUint64)
		if pl.Rate >= 1 || splitmix64(in.seed^uint64(p)<<56^mix(uint64(site))^mix(n)) < threshold {
			if pl.MaxFires == 0 || s.rateFires.Add(1) <= pl.MaxFires {
				return true
			}
		}
	}
	return false
}

// Fires returns how many times (point, site) has fired.
func (in *Injector) Fires(p Point, site int) uint64 {
	if in == nil {
		return 0
	}
	n := uint64(0)
	in.mu.Lock()
	for _, e := range in.log {
		if e.Point == p && e.Site == site {
			n++
		}
	}
	in.mu.Unlock()
	return n
}

// Events returns the fire log sorted by (point, site, n) — a canonical
// order independent of the interleaving in which fires were recorded.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Point != out[j].Point {
			return out[i].Point < out[j].Point
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].N < out[j].N
	})
	return out
}

// LogBytes serializes the canonical fire log, one "point site n" line per
// event. Two runs with the same seed and per-site event streams produce
// byte-identical logs — the chaos tests' determinism artifact.
func (in *Injector) LogBytes() []byte {
	var b strings.Builder
	for _, e := range in.Events() {
		fmt.Fprintf(&b, "%s %d %d\n", e.Point, e.Site, e.N)
	}
	return []byte(b.String())
}

// mix spreads low-entropy inputs (site ids, event counters) across the word
// before they enter the hash.
func mix(v uint64) uint64 { return v * 0x9E3779B97F4A7C15 }

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
