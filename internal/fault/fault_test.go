package fault

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(OpPanic, 0) {
		t.Fatal("nil injector fired")
	}
	if d := in.FireDelay(OpSlow, 0); d != 0 {
		t.Fatalf("nil injector delay = %v", d)
	}
	if ev := in.Events(); ev != nil {
		t.Fatalf("nil injector events = %v", ev)
	}
	if in.Fires(OpPanic, 0) != 0 {
		t.Fatal("nil injector counted fires")
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(1)
	in.Arm(ConnKill, 7, Plan{EveryN: 1})
	for i := 0; i < 100; i++ {
		if in.Fire(OpPanic, 7) {
			t.Fatal("unarmed point fired")
		}
		if in.Fire(ConnKill, 8) {
			t.Fatal("unarmed site fired")
		}
	}
}

func TestEveryNWithMaxFires(t *testing.T) {
	in := New(42)
	in.Arm(OpPanic, 3, Plan{EveryN: 10, MaxFires: 2})
	var fired []int
	for i := 1; i <= 50; i++ {
		if in.Fire(OpPanic, 3) {
			fired = append(fired, i)
		}
	}
	want := []int{10, 20}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if got := in.Fires(OpPanic, 3); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
}

func TestNthFiresOnce(t *testing.T) {
	in := New(0)
	in.Arm(FrameCorrupt, 0, Plan{Nth: 5})
	count := 0
	for i := 1; i <= 20; i++ {
		if in.Fire(FrameCorrupt, 0) {
			if i != 5 {
				t.Fatalf("fired at event %d, want 5", i)
			}
			count++
		}
	}
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
}

func TestRateIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		in := New(seed)
		in.Arm(OpSlow, 1, Plan{Rate: 0.1})
		var fires []uint64
		for i := 0; i < 1000; i++ {
			if in.Fire(OpSlow, 1) {
				fires = append(fires, uint64(i+1))
			}
		}
		return fires
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d", i)
		}
	}
	if len(a) == 0 || len(a) == 1000 {
		t.Fatalf("rate 0.1 fired %d/1000 events", len(a))
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical rate fires")
	}
}

func TestFireDelayReturnsPlanDelay(t *testing.T) {
	in := New(1)
	in.Arm(WriterStall, 2, Plan{EveryN: 2, Delay: 3 * time.Millisecond})
	if d := in.FireDelay(WriterStall, 2); d != 0 {
		t.Fatalf("event 1 delay = %v, want 0", d)
	}
	if d := in.FireDelay(WriterStall, 2); d != 3*time.Millisecond {
		t.Fatalf("event 2 delay = %v, want 3ms", d)
	}
}

// TestConcurrentFiresDeterministicLog drives one site from many goroutines:
// the set of fired event numbers (and so the canonical log) must match a
// serial run, because fire decisions depend only on the event number.
func TestConcurrentFiresDeterministicLog(t *testing.T) {
	const events = 10000
	serial := New(99)
	serial.Arm(OpPanic, 4, Plan{EveryN: 137, MaxFires: 20})
	for i := 0; i < events; i++ {
		serial.Fire(OpPanic, 4)
	}

	conc := New(99)
	conc.Arm(OpPanic, 4, Plan{EveryN: 137, MaxFires: 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events/8; i++ {
				conc.Fire(OpPanic, 4)
			}
		}()
	}
	wg.Wait()

	if !bytes.Equal(serial.LogBytes(), conc.LogBytes()) {
		t.Fatalf("concurrent log diverged from serial:\n%s\nvs\n%s",
			conc.LogBytes(), serial.LogBytes())
	}
}

func TestLogBytesCanonicalOrder(t *testing.T) {
	in := New(0)
	in.Arm(ConnKill, 1, Plan{EveryN: 1, MaxFires: 1})
	in.Arm(OpPanic, 9, Plan{EveryN: 1, MaxFires: 1})
	// Fire in reverse point order; the log must still sort by point.
	in.Fire(ConnKill, 1)
	in.Fire(OpPanic, 9)
	want := "op-panic 9 1\nconn-kill 1 1\n"
	if got := string(in.LogBytes()); got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

func TestOpSiteSeparatesPEs(t *testing.T) {
	if OpSite(0, 5) == OpSite(1, 5) {
		t.Fatal("PE namespaces collide")
	}
	if OpSite(1, 0) == OpSite(0, 1<<16) {
		// Documented stride: callers must keep node ids below the stride.
		t.Log("stride boundary: node ids at 1<<16 would collide across PEs")
	}
}
