package core

import (
	"math"
	"sort"
)

// profilingGroup is a set of operators with similar cost metric, formed by
// logarithmic binning (§3.1, observation O2). Threading-model exploration
// adjusts whole groups before descending into partial groups.
type profilingGroup struct {
	// bin is the logarithmic bin key; higher means more expensive.
	bin int
	// ops lists the operator indices in the group, ascending.
	ops []int
}

// binGroups partitions the candidate operators into profiling groups by
// logarithmic binning of their cost metric and returns them ordered for
// exploration: most expensive first for direction UP, least expensive first
// for DOWN (§3.3, "we start with the group of the lowest relative cost").
func binGroups(metric []float64, candidates []int, base float64, dir Direction) []profilingGroup {
	byBin := make(map[int][]int)
	logBase := math.Log(base)
	for _, op := range candidates {
		m := metric[op]
		bin := math.MinInt32
		if m > 0 {
			bin = int(math.Floor(math.Log(m) / logBase))
		}
		byBin[bin] = append(byBin[bin], op)
	}
	groups := make([]profilingGroup, 0, len(byBin))
	for bin, ops := range byBin {
		sort.Ints(ops)
		groups = append(groups, profilingGroup{bin: bin, ops: ops})
	}
	sort.Slice(groups, func(i, j int) bool {
		if dir == DirDown {
			return groups[i].bin < groups[j].bin
		}
		return groups[i].bin > groups[j].bin
	})
	return groups
}
