package core

import "time"

// TraceAnalysis quantifies the SASO properties over an adaptation trace:
// stability (configuration churn and oscillation), accuracy (converged vs.
// peak throughput), settling time, and overshoot (threads explored beyond
// the converged count).
type TraceAnalysis struct {
	// Observations is the trace length.
	Observations int
	// SettleTime is the time of the first settled-phase event (0 if the
	// trace never settles).
	SettleTime time.Duration
	// ConfigChanges counts observations whose (threads, queues) differ
	// from the previous observation.
	ConfigChanges int
	// Oscillations counts A-B-A-B configuration patterns, the instability
	// signature the coordination is designed to prevent.
	Oscillations int
	// FinalThroughput is the last observation's throughput; PeakThroughput
	// the maximum across the trace (transient peaks during queue flips
	// included, as the paper notes for Fig. 6).
	FinalThroughput float64
	PeakThroughput  float64
	// FinalThreads and MaxThreads quantify overshoot: how far exploration
	// exceeded the converged thread count.
	FinalThreads int
	MaxThreads   int
	// PostSettleChanges counts configuration changes after settling; any
	// nonzero value under a steady workload is an instability.
	PostSettleChanges int
}

// AnalyzeTrace computes SASO statistics from an adaptation trace.
func AnalyzeTrace(events []TraceEvent) TraceAnalysis {
	a := TraceAnalysis{Observations: len(events)}
	if len(events) == 0 {
		return a
	}
	type config struct{ threads, queues int }
	var prev [3]config
	settled := false
	for i, e := range events {
		cur := config{e.Threads, e.Queues}
		if e.Throughput > a.PeakThroughput {
			a.PeakThroughput = e.Throughput
		}
		if e.Threads > a.MaxThreads {
			a.MaxThreads = e.Threads
		}
		if i > 0 && cur != prev[0] {
			a.ConfigChanges++
			if settled {
				a.PostSettleChanges++
			}
		}
		// A-B-A-B: the configuration two steps back equals the current
		// one, and three steps back equals the previous one, with A != B.
		if i >= 3 && cur == prev[1] && prev[0] == prev[2] && cur != prev[0] {
			a.Oscillations++
		}
		if !settled && e.Phase == PhaseSettled {
			settled = true
			a.SettleTime = e.Time
		}
		prev[2] = prev[1]
		prev[1] = prev[0]
		prev[0] = cur
	}
	last := events[len(events)-1]
	a.FinalThroughput = last.Throughput
	a.FinalThreads = last.Threads
	return a
}

// Accuracy returns the converged throughput as a fraction of the peak
// observed (1 means the system settled at its best configuration; transient
// exploration peaks can push this below 1 without harm).
func (a TraceAnalysis) Accuracy() float64 {
	if a.PeakThroughput == 0 {
		return 0
	}
	return a.FinalThroughput / a.PeakThroughput
}

// Overshoot returns how many more threads exploration used than the
// converged configuration.
func (a TraceAnalysis) Overshoot() int {
	return a.MaxThreads - a.FinalThreads
}
