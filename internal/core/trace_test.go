package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTraceCSVRoundTrip drives notes with commas, quotes, and newlines
// through WriteCSV and reads them back with a csv.Reader: the shared
// serialization path must quote whatever the coordinator writes.
func TestTraceCSVRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Time: 1500 * time.Millisecond, Throughput: 1234.5, Threads: 4, Queues: 2,
			Phase: PhaseTC, Note: `4 -> 8 threads; gain 12%, "satisfied"`},
		{Time: 2 * time.Second, Throughput: 999.9, Threads: 8, Queues: 2,
			Phase: PhaseTM, Note: "queue placed, op=w1\nsecond line"},
		{Time: 3 * time.Second, Throughput: 1000, Threads: 8, Queues: 3,
			Phase: PhaseSettled, Note: ""},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("reading back the CSV: %v", err)
	}
	if len(rows) != len(events)+1 {
		t.Fatalf("got %d rows, want %d", len(rows), len(events)+1)
	}
	wantHeader := "time_s,throughput,threads,queues,phase,note"
	if strings.Join(rows[0], ",") != wantHeader {
		t.Fatalf("header = %v, want %s", rows[0], wantHeader)
	}
	for i, e := range events {
		row := rows[i+1]
		if row[4] != string(e.Phase) {
			t.Fatalf("row %d phase = %q, want %q", i, row[4], e.Phase)
		}
		if row[5] != e.Note {
			t.Fatalf("row %d note = %q, want %q (must round-trip)", i, row[5], e.Note)
		}
	}
}

// TestTraceChromeExport checks the Chrome trace_event JSON is parseable and
// carries the same column values as the CSV — including hostile notes.
func TestTraceChromeExport(t *testing.T) {
	events := []TraceEvent{
		{Time: time.Second, Throughput: 50, Threads: 2, Queues: 1,
			Phase: PhaseTM, Note: `note with "quotes", commas`},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (instant + 2 counters)", len(doc.TraceEvents))
	}
	inst := doc.TraceEvents[0]
	if inst.Ph != "i" || inst.Ts != 1e6 {
		t.Fatalf("instant event = %+v, want ph=i ts=1e6", inst)
	}
	if got := inst.Args["note"]; got != events[0].Note {
		t.Fatalf("args.note = %q, want %q", got, events[0].Note)
	}
	var sawThroughput, sawConfig bool
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "C" {
			t.Fatalf("counter event ph = %q, want C", ev.Ph)
		}
		switch ev.Name {
		case "throughput":
			sawThroughput = true
			if ev.Args["tuples_per_s"] != 50.0 {
				t.Fatalf("throughput counter = %v", ev.Args)
			}
		case "config":
			sawConfig = true
			if ev.Args["threads"] != 2.0 || ev.Args["queues"] != 1.0 {
				t.Fatalf("config counter = %v", ev.Args)
			}
		}
	}
	if !sawThroughput || !sawConfig {
		t.Fatal("missing counter track")
	}
}

// TestCoordinatorObserver checks SetObserver receives each recorded event.
func TestCoordinatorObserver(t *testing.T) {
	f := newFakeEngine([]float64{0.001, 0.002, 0.003}, 0.0005, 4, 8)
	c, err := NewCoordinator(f, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var seen []TraceEvent
	c.SetObserver(func(ev TraceEvent) { seen = append(seen, ev) })
	for i := 0; i < 5; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	trace := c.Trace()
	if len(seen) != len(trace) {
		t.Fatalf("observer saw %d events, trace has %d", len(seen), len(trace))
	}
	for i, ev := range trace {
		if seen[i] != ev {
			t.Fatalf("observer event %d = %+v, trace has %+v", i, seen[i], ev)
		}
	}
}
