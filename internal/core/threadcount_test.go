package core

import "testing"

// poolEngine builds a fake engine whose throughput scales with threads up
// to the point where the pool is fully parallelized, so the optimal thread
// count is a known interior value.
func poolEngine(dynOps int, cores, maxT int) *fakeEngine {
	costs := []float64{0.0001}
	for i := 0; i < dynOps; i++ {
		costs = append(costs, 0.010)
	}
	f := newFakeEngine(costs, 0.0005, cores, maxT)
	place := make([]bool, len(costs))
	for i := 1; i < len(costs); i++ {
		place[i] = true
	}
	if err := f.ApplyPlacement(place); err != nil {
		panic(err)
	}
	return f
}

// runTC drives a tcRun to completion, returning observations used.
func runTC(t *testing.T, f *fakeEngine, cfg Config) int {
	t.Helper()
	run := newTCRun(f, cfg)
	for steps := 0; steps < 200; steps++ {
		thr, err := f.Observe()
		if err != nil {
			t.Fatal(err)
		}
		_, done, err := run.Step(thr)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return steps + 1
		}
	}
	t.Fatal("thread-count run did not terminate")
	return 0
}

func TestTCRunScalesUpWhileProfitable(t *testing.T) {
	// With the pool bound at cores-1 = 31 effective threads and 64 dynamic
	// ops, throughput improves all the way to the core limit.
	f := poolEngine(64, 32, 128)
	runTC(t, f, DefaultConfig())
	got := f.ThreadCount()
	if got < 24 || got > 40 {
		t.Fatalf("settled at %d threads, want near the 31-thread core limit", got)
	}
}

func TestTCRunAvoidsOvershoot(t *testing.T) {
	// Throughput saturates at 8 effective threads (cores=9); the run must
	// not settle far beyond it even though 128 threads are allowed.
	f := poolEngine(32, 9, 128)
	runTC(t, f, DefaultConfig())
	got := f.ThreadCount()
	if got > 16 {
		t.Fatalf("settled at %d threads; overshoot past the 8-thread saturation point", got)
	}
	if got < 6 {
		t.Fatalf("settled at %d threads; undershoot", got)
	}
}

func TestTCRunNoHeadroom(t *testing.T) {
	f := poolEngine(4, 8, 1)
	cfg := DefaultConfig()
	steps := runTC(t, f, cfg)
	if f.ThreadCount() != 1 {
		t.Fatalf("thread count = %d, want 1", f.ThreadCount())
	}
	if steps != 1 {
		t.Fatalf("no-headroom run took %d steps, want 1", steps)
	}
}

func TestTCRunRespectsConfigMax(t *testing.T) {
	f := poolEngine(64, 128, 128)
	cfg := DefaultConfig()
	cfg.MaxThreads = 8
	runTC(t, f, cfg)
	if f.ThreadCount() > 8 {
		t.Fatalf("thread count %d exceeds config max 8", f.ThreadCount())
	}
}

func TestTCRunTerminatesInLogSteps(t *testing.T) {
	f := poolEngine(256, 1024, 512)
	steps := runTC(t, f, DefaultConfig())
	if steps > 25 {
		t.Fatalf("exploration over 512 threads took %d observations, want O(log)", steps)
	}
}

func TestTCRunSetThreadErrorPropagates(t *testing.T) {
	f := poolEngine(8, 16, 64)
	run := newTCRun(f, DefaultConfig())
	f.failSetT = true
	thr, _ := f.Observe()
	if _, _, err := run.Step(thr); err == nil {
		t.Fatal("SetThreadCount failure did not propagate")
	}
}

func TestTCRunStepAfterFinish(t *testing.T) {
	f := poolEngine(4, 8, 1)
	run := newTCRun(f, DefaultConfig())
	thr, _ := f.Observe()
	if _, done, _ := run.Step(thr); !done {
		t.Fatal("expected immediate finish with maxT=1")
	}
	if _, done, err := run.Step(thr); !done || err != nil {
		t.Fatalf("Step after finish = (done=%v, err=%v), want (true, nil)", done, err)
	}
}
