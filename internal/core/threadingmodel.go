package core

import (
	"fmt"
	"math/rand"
)

// tmRun is one threading-model elasticity exploration (§3.1). It walks the
// profiling groups in cost order and, within each group, performs the
// trend-guided adaptive search of rules R1–R5: jump to the whole group,
// then move in the direction the two-point performance trend indicates,
// halving the step after the first reversal, and stop when the trend
// flattens, the step cannot move, or a position would be revisited. The
// visited-set stop is what gives the SASO stability property: the search
// can never oscillate between placements because every placement is tried
// at most once per run.
type tmRun struct {
	eng  Engine
	cfg  Config
	rng  *rand.Rand
	dir  Direction
	sens float64

	groups []profilingGroup
	gi     int

	// initial is the placement when the run started, for the STAY/CHANGE
	// decision. base is the placement with all settled groups folded in
	// and the current group at count 0.
	initial []bool
	base    []bool

	// Per-group search state.
	order    []int // shuffled candidate operators of the current group
	pos      int   // applied count: how many of order[:pos] are toggled
	prevPerf float64
	stepSize int
	dirn     int
	reversed bool
	visited  map[int]float64
	bestPos  int
	bestPerf float64
	started  bool

	finished bool
	final    Decision
	// lastNote describes the most recent adjustment for the trace.
	lastNote string
}

// newTMRun prepares a threading-model exploration in the given direction.
// Direction UP considers currently-manual operators as candidates for
// scheduler queues; DOWN considers currently-dynamic operators for
// reverting to manual.
func newTMRun(eng Engine, dir Direction, cfg Config, rng *rand.Rand) *tmRun {
	metric := eng.CostMetric()
	place := eng.Placement()
	placeable := eng.Placeable()
	var candidates []int
	for op := 0; op < eng.NumOperators(); op++ {
		if !placeable[op] {
			continue
		}
		if (dir == DirUp && !place[op]) || (dir == DirDown && place[op]) {
			candidates = append(candidates, op)
		}
	}
	r := &tmRun{
		eng:     eng,
		cfg:     cfg,
		rng:     rng,
		dir:     dir,
		sens:    cfg.Sens,
		groups:  binGroups(metric, candidates, cfg.GroupBase, dir),
		initial: clonePlacement(place),
		base:    clonePlacement(place),
	}
	if len(r.groups) == 0 {
		r.finished = true
		r.final = DecisionStay
		r.lastNote = "no candidate operators"
		return r
	}
	r.enterGroup(0)
	return r
}

func clonePlacement(p []bool) []bool {
	out := make([]bool, len(p))
	copy(out, p)
	return out
}

// enterGroup resets the per-group search state for group gi.
func (r *tmRun) enterGroup(gi int) {
	r.gi = gi
	g := r.groups[gi]
	r.order = make([]int, len(g.ops))
	copy(r.order, g.ops)
	// The paper selects an arbitrary set of N operators within the group
	// (§3.1.1); a seeded shuffle realizes that while keeping runs
	// reproducible.
	r.rng.Shuffle(len(r.order), func(i, j int) {
		r.order[i], r.order[j] = r.order[j], r.order[i]
	})
	r.pos = 0
	r.stepSize = 0
	r.dirn = 1
	r.reversed = false
	r.visited = make(map[int]float64)
	r.bestPos = 0
	r.bestPerf = 0
	r.started = false
}

// apply reconfigures the engine so the first count candidates of the
// current group are toggled relative to base.
func (r *tmRun) apply(count int) error {
	p := clonePlacement(r.base)
	for i := 0; i < count; i++ {
		p[r.order[i]] = r.dir == DirUp
	}
	return r.eng.ApplyPlacement(p)
}

// Step consumes the throughput observed under the currently applied
// placement and either applies the next trial placement (returning
// DecisionContinue) or concludes the run (DecisionStay or DecisionChange).
func (r *tmRun) Step(perf float64) (Decision, error) {
	if r.finished {
		return r.final, nil
	}
	if !r.started {
		// perf is the baseline of the current group at count 0.
		r.started = true
		r.visited[0] = perf
		r.bestPos, r.bestPerf = 0, perf
		r.prevPerf = perf
		full := len(r.order)
		// R1: jump to the whole group first; observation O2 says similar
		// cost implies similar benefit, so the group is adjusted as one.
		r.pos = full
		r.stepSize = full
		r.dirn = 1
		if err := r.apply(r.pos); err != nil {
			return 0, fmt.Errorf("threading model apply: %w", err)
		}
		r.lastNote = fmt.Sprintf("group %d/%d: trying %d/%d ops %s", r.gi+1, len(r.groups), r.pos, full, r.dir)
		return DecisionContinue, nil
	}

	r.visited[r.pos] = perf
	// Track the best count seen. A trial must beat the best by more than
	// SENS to be adopted: flat trials keep the incumbent configuration
	// (R5), which is what prevents noise-driven placement churn — the
	// oscillation hazard §3.2 describes for signals "indistinguishable
	// from system noise".
	if perf > r.bestPerf*(1+r.sens) {
		r.bestPos, r.bestPerf = r.pos, perf
	}
	improved := perf > r.prevPerf*(1+r.sens)
	worsened := perf < r.prevPerf*(1-r.sens)

	var next int
	switch {
	case improved:
		// R1/R2: increasing trend in the direction we moved; keep going.
		if r.reversed {
			r.stepSize = maxInt(1, r.stepSize/2)
		}
		next = clampInt(r.pos+r.dirn*r.stepSize, 0, len(r.order))
	case worsened:
		// R3/R4: decreasing trend; reverse and halve the step.
		r.dirn = -r.dirn
		r.reversed = true
		r.stepSize = maxInt(1, r.stepSize/2)
		next = clampInt(r.pos+r.dirn*r.stepSize, 0, len(r.order))
	default:
		// R5: the trend is flat within SENS; the peak is bracketed.
		return r.finishGroup()
	}
	if next == r.pos {
		return r.finishGroup()
	}
	if _, seen := r.visited[next]; seen {
		return r.finishGroup()
	}
	r.prevPerf = perf
	r.pos = next
	if err := r.apply(r.pos); err != nil {
		return 0, fmt.Errorf("threading model apply: %w", err)
	}
	r.lastNote = fmt.Sprintf("group %d/%d: trying %d/%d ops %s", r.gi+1, len(r.groups), r.pos, len(r.order), r.dir)
	return DecisionContinue, nil
}

// finishGroup settles the current group at its best observed count, then
// either advances to the next group (when the whole group was beneficial,
// Fig. 4 lines 4–6) or concludes the run.
func (r *tmRun) finishGroup() (Decision, error) {
	full := len(r.order)
	if err := r.apply(r.bestPos); err != nil {
		return 0, fmt.Errorf("threading model settle: %w", err)
	}
	// Fold the settled group into the base placement.
	for i := 0; i < r.bestPos; i++ {
		r.base[r.order[i]] = r.dir == DirUp
	}
	wholeGroupWon := r.bestPos == full
	if wholeGroupWon && r.gi+1 < len(r.groups) {
		r.lastNote = fmt.Sprintf("group %d/%d settled at %d/%d; continuing to next group", r.gi+1, len(r.groups), r.bestPos, full)
		r.enterGroup(r.gi + 1)
		return DecisionContinue, nil
	}
	r.finished = true
	if placementsEqual(r.initial, r.base) {
		r.final = DecisionStay
	} else {
		r.final = DecisionChange
	}
	r.lastNote = fmt.Sprintf("group %d/%d settled at %d/%d; %s", r.gi+1, len(r.groups), r.bestPos, full, r.final)
	return r.final, nil
}

// Note returns a description of the run's most recent adjustment.
func (r *tmRun) Note() string { return r.lastNote }

func placementsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
