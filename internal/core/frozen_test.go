package core

import (
	"testing"
)

// TestFrozenCoordinatorSkipsAdaptation verifies the watchdog's control
// surface: a frozen coordinator keeps observing (trace events accumulate)
// but applies no placement or thread-count changes until thawed.
func TestFrozenCoordinatorSkipsAdaptation(t *testing.T) {
	f := newFakeEngine([]float64{0.001, 0.02, 0.02, 0.02}, 0.0005, 8, 8)
	c, err := NewCoordinator(f, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Frozen() {
		t.Fatal("coordinator born frozen")
	}
	c.SetFrozen(true)
	if !c.Frozen() {
		t.Fatal("SetFrozen(true) not visible")
	}

	threads := f.threads
	applies := f.applies
	for i := 0; i < 5; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.threads != threads || f.applies != applies {
		t.Fatalf("frozen coordinator adapted: threads %d->%d, applies %d->%d",
			threads, f.threads, applies, f.applies)
	}
	trace := c.Trace()
	if len(trace) != 5 {
		t.Fatalf("frozen coordinator recorded %d trace events, want 5", len(trace))
	}
	for _, e := range trace {
		if e.Phase != PhaseFrozen {
			t.Fatalf("trace phase %q while frozen, want %q", e.Phase, PhaseFrozen)
		}
	}

	// Thaw: adaptation resumes from where it left off.
	c.SetFrozen(false)
	if c.Frozen() {
		t.Fatal("SetFrozen(false) not visible")
	}
	steps, settled, err := c.RunUntilSettled(200)
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatalf("thawed coordinator never settled in %d steps", steps)
	}
	if f.applies == applies && f.threads == threads {
		t.Fatal("thawed coordinator never adapted")
	}
	adapted := 0
	for _, e := range c.Trace() {
		if e.Phase != PhaseFrozen {
			adapted++
		}
	}
	if adapted == 0 {
		t.Fatal("no non-frozen trace events after the thaw")
	}
}
