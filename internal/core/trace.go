package core

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// Phase labels the elastic component active when a trace event was taken.
type Phase string

// Trace phases.
const (
	PhaseInitTM  Phase = "init-threading-model"
	PhaseTM      Phase = "threading-model"
	PhaseTC      Phase = "thread-count"
	PhaseSettled Phase = "settled"
	// PhaseFrozen marks observations taken while a health watchdog held
	// adaptation frozen; no configuration change accompanies them.
	PhaseFrozen Phase = "frozen"
)

// TraceEvent is one adaptation-period observation, the unit from which the
// paper's timeline figures (Fig. 6, Fig. 13) are regenerated.
type TraceEvent struct {
	// Time is the engine clock when the observation completed.
	Time time.Duration
	// Throughput is the sink throughput over the period, tuples/second.
	Throughput float64
	// Threads is the scheduler-thread count during the period.
	Threads int
	// Queues is the number of scheduler queues during the period.
	Queues int
	// Phase is the active elastic component.
	Phase Phase
	// Note carries a human-readable description of the adjustment taken
	// after the observation.
	Note string
}

// traceColumns is the serialization schema shared by every trace writer:
// the CSV header and the Chrome-trace args keys come from here, and
// TraceEvent.columns renders values in the same order. One schema means a
// note that survives the CSV round-trip survives the JSON one too.
var traceColumns = []string{"time_s", "throughput", "threads", "queues", "phase", "note"}

// columns renders the event's fields in traceColumns order.
func (e TraceEvent) columns() []string {
	return []string{
		strconv.FormatFloat(e.Time.Seconds(), 'f', 3, 64),
		strconv.FormatFloat(e.Throughput, 'f', 1, 64),
		strconv.Itoa(e.Threads),
		strconv.Itoa(e.Queues),
		string(e.Phase),
		e.Note,
	}
}

// Trace accumulates adaptation events.
type Trace struct {
	events []TraceEvent
}

func (t *Trace) add(e TraceEvent) {
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []TraceEvent {
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// WriteCSV writes the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	return WriteCSV(w, t.events)
}

// WriteCSV writes events as RFC 4180 CSV with a header row. Fields
// containing commas, quotes, or newlines are quoted by the csv package, so
// any note round-trips through a csv.Reader.
func WriteCSV(w io.Writer, events []TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceColumns); err != nil {
		return err
	}
	for _, e := range events {
		if err := cw.Write(e.columns()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// chromeEvent is one entry in the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). Ts is microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.events)
}

// WriteChromeTrace renders events as Chrome trace_event JSON: one instant
// event per adaptation decision (args carry the full column set, so notes
// with any punctuation survive — encoding/json escapes them) plus counter
// tracks for throughput and threads/queues, which chrome://tracing and
// Perfetto draw as the paper's timeline figures.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	evs := make([]chromeEvent, 0, 3*len(events))
	for _, e := range events {
		ts := float64(e.Time.Microseconds())
		name := string(e.Phase)
		if e.Note != "" {
			name += ": " + e.Note
		}
		cols := e.columns()
		args := make(map[string]any, len(traceColumns))
		for i, k := range traceColumns {
			args[k] = cols[i]
		}
		evs = append(evs,
			chromeEvent{Name: name, Ph: "i", Ts: ts, Pid: 1, Tid: 1, S: "t", Args: args},
			chromeEvent{Name: "throughput", Ph: "C", Ts: ts, Pid: 1, Tid: 1,
				Args: map[string]any{"tuples_per_s": e.Throughput}},
			chromeEvent{Name: "config", Ph: "C", Ts: ts, Pid: 1, Tid: 1,
				Args: map[string]any{"threads": e.Threads, "queues": e.Queues}},
		)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
