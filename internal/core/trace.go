package core

import (
	"fmt"
	"io"
	"time"
)

// Phase labels the elastic component active when a trace event was taken.
type Phase string

// Trace phases.
const (
	PhaseInitTM  Phase = "init-threading-model"
	PhaseTM      Phase = "threading-model"
	PhaseTC      Phase = "thread-count"
	PhaseSettled Phase = "settled"
	// PhaseFrozen marks observations taken while a health watchdog held
	// adaptation frozen; no configuration change accompanies them.
	PhaseFrozen Phase = "frozen"
)

// TraceEvent is one adaptation-period observation, the unit from which the
// paper's timeline figures (Fig. 6, Fig. 13) are regenerated.
type TraceEvent struct {
	// Time is the engine clock when the observation completed.
	Time time.Duration
	// Throughput is the sink throughput over the period, tuples/second.
	Throughput float64
	// Threads is the scheduler-thread count during the period.
	Threads int
	// Queues is the number of scheduler queues during the period.
	Queues int
	// Phase is the active elastic component.
	Phase Phase
	// Note carries a human-readable description of the adjustment taken
	// after the observation.
	Note string
}

// Trace accumulates adaptation events.
type Trace struct {
	events []TraceEvent
}

func (t *Trace) add(e TraceEvent) {
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []TraceEvent {
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// WriteCSV writes the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,throughput,threads,queues,phase,note"); err != nil {
		return err
	}
	for _, e := range t.events {
		_, err := fmt.Fprintf(w, "%.3f,%.1f,%d,%d,%s,%q\n",
			e.Time.Seconds(), e.Throughput, e.Threads, e.Queues, e.Phase, e.Note)
		if err != nil {
			return err
		}
	}
	return nil
}
