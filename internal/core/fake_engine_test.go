package core

import (
	"errors"
	"time"
)

// fakeEngine is a closed-form engine model for controller unit tests. Its
// throughput follows a max-of-bottlenecks pipeline model:
//
//	thr = 1 / max(manualLoad, poolLoad / min(threads, cores))
//
// where manualLoad is the summed cost of all manual operators (executed
// serially by the source thread) and poolLoad is the summed cost of dynamic
// operators plus a per-queue overhead. Moving expensive operators behind
// queues therefore helps (parallelism) while moving cheap ones hurts
// (overhead), which is exactly the trade-off the controllers must find.
type fakeEngine struct {
	costs     []float64 // per-op service time, seconds
	sources   []bool
	queueOver float64
	cores     int
	maxT      int

	placement []bool
	threads   int
	clock     time.Duration
	period    time.Duration

	observations int
	applies      int
	failApply    bool
	failSetT     bool
	failObserve  bool

	// perturb, when non-nil, rescales throughput (workload change tests).
	perturb func(thr float64) float64
}

func newFakeEngine(costs []float64, queueOver float64, cores, maxT int) *fakeEngine {
	f := &fakeEngine{
		costs:     costs,
		sources:   make([]bool, len(costs)),
		queueOver: queueOver,
		cores:     cores,
		maxT:      maxT,
		placement: make([]bool, len(costs)),
		threads:   1,
		period:    5 * time.Second,
	}
	f.sources[0] = true
	return f
}

func (f *fakeEngine) NumOperators() int { return len(f.costs) }

func (f *fakeEngine) Placeable() []bool {
	out := make([]bool, len(f.costs))
	for i := range out {
		out[i] = !f.sources[i]
	}
	return out
}

func (f *fakeEngine) CostMetric() []float64 {
	out := make([]float64, len(f.costs))
	copy(out, f.costs)
	return out
}

func (f *fakeEngine) Placement() []bool {
	out := make([]bool, len(f.placement))
	copy(out, f.placement)
	return out
}

func (f *fakeEngine) ApplyPlacement(p []bool) error {
	if f.failApply {
		return errors.New("apply failure injected")
	}
	if len(p) != len(f.placement) {
		return errors.New("placement length mismatch")
	}
	copy(f.placement, p)
	f.applies++
	return nil
}

func (f *fakeEngine) ThreadCount() int { return f.threads }

func (f *fakeEngine) SetThreadCount(n int) error {
	if f.failSetT {
		return errors.New("set threads failure injected")
	}
	if n < 1 || n > f.maxT {
		return errors.New("thread count out of range")
	}
	f.threads = n
	return nil
}

func (f *fakeEngine) MaxThreads() int { return f.maxT }

func (f *fakeEngine) throughput() float64 {
	manual := 0.0
	pool := 0.0
	for i, c := range f.costs {
		if !f.sources[i] && f.placement[i] {
			pool += c + f.queueOver
		} else {
			manual += c
		}
	}
	eff := f.threads
	if eff > f.cores-1 {
		eff = f.cores - 1
	}
	bottleneck := manual
	if pool > 0 && eff > 0 {
		if p := pool / float64(eff); p > bottleneck {
			bottleneck = p
		}
	}
	if bottleneck <= 0 {
		return 0
	}
	thr := 1 / bottleneck
	if f.perturb != nil {
		thr = f.perturb(thr)
	}
	return thr
}

func (f *fakeEngine) Observe() (float64, error) {
	if f.failObserve {
		return 0, errors.New("observe failure injected")
	}
	f.observations++
	f.clock += f.period
	return f.throughput(), nil
}

func (f *fakeEngine) Now() time.Duration { return f.clock }

var _ Engine = (*fakeEngine)(nil)

// dynCount returns how many non-source operators are dynamic.
func (f *fakeEngine) dynCount() int {
	n := 0
	for i, d := range f.placement {
		if d && !f.sources[i] {
			n++
		}
	}
	return n
}
