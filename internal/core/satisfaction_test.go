package core

import "testing"

// newIdleCoordinator builds a coordinator without running it, for directly
// unit-testing the Fig. 7 trigger logic.
func newIdleCoordinator(t *testing.T, cfg Config) (*Coordinator, *fakeEngine) {
	t.Helper()
	f := heavyLightEngine()
	c, err := NewCoordinator(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestSatisfactionSkipsProportionalGain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SatisfactionThreshold = 0.6
	c, _ := newIdleCoordinator(t, cfg)

	// Threads doubled (gain denominator 1.0) and throughput rose 80%:
	// 0.8/1.0 > 0.6 => satisfied, skip the secondary adjustment.
	trigger, _ := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 16, fromThr: 1000}, 1800)
	if trigger {
		t.Fatal("satisfied thread gain still triggered threading-model elasticity")
	}
}

func TestSatisfactionTriggersOnWeakGain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SatisfactionThreshold = 0.6
	cfg.UseHistory = false
	c, _ := newIdleCoordinator(t, cfg)

	// Threads doubled but throughput rose only 20%: 0.2/1.0 < 0.6.
	trigger, dir := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 16, fromThr: 1000}, 1200)
	if !trigger {
		t.Fatal("unsatisfying gain did not trigger threading-model elasticity")
	}
	if dir != DirUp {
		t.Fatalf("direction = %v, want up for a thread increase", dir)
	}
}

func TestSatisfactionIgnoresNoiseLevelGain(t *testing.T) {
	// sf = 0 means "skip unless throughput dropped" — but a +1% noise
	// wiggle must not count as satisfaction (it is below SENS).
	cfg := DefaultConfig()
	cfg.SatisfactionThreshold = 0
	cfg.UseHistory = false
	c, _ := newIdleCoordinator(t, cfg)

	trigger, _ := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 16, fromThr: 1000}, 1010)
	if !trigger {
		t.Fatal("noise-level gain satisfied sf=0")
	}
	// A genuine 10% gain does satisfy sf=0.
	trigger, _ = c.shouldTriggerTM(&tcChange{fromT: 8, toT: 16, fromThr: 1000}, 1100)
	if trigger {
		t.Fatal("real gain did not satisfy sf=0")
	}
}

func TestSatisfactionNotAppliedToDecreases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseHistory = false
	c, _ := newIdleCoordinator(t, cfg)

	// Thread decreases always consult the secondary adjustment (the
	// paper's condition only covers increases); direction follows the
	// change.
	trigger, dir := c.shouldTriggerTM(&tcChange{fromT: 16, toT: 8, fromThr: 1000}, 5000)
	if !trigger {
		t.Fatal("thread decrease skipped threading-model elasticity")
	}
	if dir != DirDown {
		t.Fatalf("direction = %v, want down for a thread decrease", dir)
	}
}

func TestHistoryDirectsTrigger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSatisfaction = false
	c, f := newIdleCoordinator(t, cfg)
	place := f.Placement()
	c.hist.noteChange(place, 8)
	c.hist.noteStay(place, 16)

	// Inside the known-good range [8,16]: skip.
	if trigger, _ := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 12, fromThr: 1000}, 1000); trigger {
		t.Fatal("in-range thread count triggered exploration")
	}
	// Above: explore up. Below: explore down.
	if trigger, dir := c.shouldTriggerTM(&tcChange{fromT: 16, toT: 24, fromThr: 1000}, 1000); !trigger || dir != DirUp {
		t.Fatalf("above-range: trigger=%v dir=%v", trigger, dir)
	}
	if trigger, dir := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 4, fromThr: 1000}, 1000); !trigger || dir != DirDown {
		t.Fatalf("below-range: trigger=%v dir=%v", trigger, dir)
	}
}

func TestSatisfactionBeforeHistory(t *testing.T) {
	// When both optimizations are on, a satisfied gain skips even when
	// history would have directed an exploration.
	cfg := DefaultConfig()
	c, f := newIdleCoordinator(t, cfg)
	c.hist.noteChange(f.Placement(), 4)
	trigger, _ := c.shouldTriggerTM(&tcChange{fromT: 8, toT: 16, fromThr: 1000}, 1900)
	if trigger {
		t.Fatal("satisfaction did not take precedence over history")
	}
}
