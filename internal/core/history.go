package core

// histEntry records a queue placement together with the range of thread
// counts known to work well with it: "Inside each history record of
// threading model adjustment, we record the maximum and minimum number of
// threads that have worked well with this configuration" (§3.3).
type histEntry struct {
	placement []bool
	minT      int
	maxT      int
}

// history is the learning-from-history store. Only the most recent entry is
// consulted, matching the paper ("we look into the record of the most
// recent queue placement").
type history struct {
	entries []histEntry
}

// noteChange records that a threading-model run changed the placement while
// the engine ran threads threads.
func (h *history) noteChange(placement []bool, threads int) {
	h.entries = append(h.entries, histEntry{
		placement: clonePlacement(placement),
		minT:      threads,
		maxT:      threads,
	})
}

// noteStay records that a threading-model run kept the current placement at
// the given thread count, widening the entry's known-good thread range.
func (h *history) noteStay(placement []bool, threads int) {
	if n := len(h.entries); n > 0 && placementsEqual(h.entries[n-1].placement, placement) {
		e := &h.entries[n-1]
		if threads < e.minT {
			e.minT = threads
		}
		if threads > e.maxT {
			e.maxT = threads
		}
		return
	}
	h.noteChange(placement, threads)
}

// direction reports which threading-model adjustment a new thread count
// suggests for the given placement: DirNone when the count lies inside the
// placement's known-good range (skip the secondary adjustment), DirUp above
// it, DirDown below it. With no applicable record it returns DirUp, the
// paper's default exploration direction.
func (h *history) direction(placement []bool, threads int) Direction {
	n := len(h.entries)
	if n == 0 || !placementsEqual(h.entries[n-1].placement, placement) {
		return DirUp
	}
	e := h.entries[n-1]
	switch {
	case threads > e.maxT:
		return DirUp
	case threads < e.minT:
		return DirDown
	default:
		return DirNone
	}
}

// clear drops all records, used when a workload change invalidates them.
func (h *history) clear() {
	h.entries = nil
}

// Len returns the number of stored records.
func (h *history) Len() int { return len(h.entries) }
