package core

import (
	"fmt"
	"math/rand"
)

// TuneThreadCount runs thread-count elasticity alone on the engine's
// current placement until it settles, then returns the settled throughput.
// This is the paper's primary baseline: the pre-existing elastic runtime
// (Streams 4.2, "dynamic threading") adjusted only the number of threads.
// It returns the settled throughput, the number of observations consumed,
// and an error if the engine fails or the exploration does not converge
// within maxSteps.
func TuneThreadCount(e Engine, cfg Config, maxSteps int) (float64, int, error) {
	if err := cfg.validate(); err != nil {
		return 0, 0, err
	}
	run := newTCRun(e, cfg)
	for step := 1; step <= maxSteps; step++ {
		thr, err := e.Observe()
		if err != nil {
			return 0, step, fmt.Errorf("observe: %w", err)
		}
		_, done, err := run.Step(thr)
		if err != nil {
			return 0, step, err
		}
		if done {
			// One more observation measures the settled configuration.
			final, err := e.Observe()
			if err != nil {
				return 0, step + 1, fmt.Errorf("observe: %w", err)
			}
			return final, step + 1, nil
		}
	}
	return 0, maxSteps, fmt.Errorf("thread-count tuning did not settle in %d steps", maxSteps)
}

// TuneThreadingModel runs one threading-model elasticity exploration in the
// given direction at the engine's current thread count, without any
// thread-count adjustment. Experiments use it to ablate the coordination
// design choices of §3.2 (primary-adjustment order, starting direction).
// It returns the settled throughput, the decision the run concluded with,
// and the number of observations consumed.
func TuneThreadingModel(e Engine, dir Direction, cfg Config, maxSteps int) (float64, Decision, int, error) {
	if err := cfg.validate(); err != nil {
		return 0, 0, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	run := newTMRun(e, dir, cfg, rng)
	for step := 1; step <= maxSteps; step++ {
		thr, err := e.Observe()
		if err != nil {
			return 0, 0, step, fmt.Errorf("observe: %w", err)
		}
		d, err := run.Step(thr)
		if err != nil {
			return 0, 0, step, err
		}
		if d != DecisionContinue {
			final, err := e.Observe()
			if err != nil {
				return 0, d, step + 1, fmt.Errorf("observe: %w", err)
			}
			return final, d, step + 1, nil
		}
	}
	return 0, 0, maxSteps, fmt.Errorf("threading-model tuning did not settle in %d steps", maxSteps)
}
