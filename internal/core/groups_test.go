package core

import "testing"

func TestBinGroupsSeparatesCostClasses(t *testing.T) {
	// Costs in the paper's three classes: 1, 100, 10000 FLOPs.
	metric := []float64{1, 100, 10000, 1, 100, 10000}
	candidates := []int{0, 1, 2, 3, 4, 5}
	groups := binGroups(metric, candidates, 10, DirUp)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	// UP explores the most expensive group first.
	if got := groups[0].ops; len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("heaviest group = %v, want [2 5]", got)
	}
	if got := groups[2].ops; len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("lightest group = %v, want [0 3]", got)
	}
}

func TestBinGroupsDownOrder(t *testing.T) {
	metric := []float64{1, 10000}
	groups := binGroups(metric, []int{0, 1}, 10, DirDown)
	if groups[0].ops[0] != 0 {
		t.Fatalf("DOWN should start with the cheapest group, got %+v", groups)
	}
}

func TestBinGroupsZeroAndNegativeMetric(t *testing.T) {
	metric := []float64{0, -5, 3}
	groups := binGroups(metric, []int{0, 1, 2}, 10, DirUp)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (zero/negative share the bottom bin): %+v", len(groups), groups)
	}
	bottom := groups[len(groups)-1]
	if len(bottom.ops) != 2 {
		t.Fatalf("bottom bin = %v, want ops 0 and 1", bottom.ops)
	}
}

func TestBinGroupsRespectsCandidateSubset(t *testing.T) {
	metric := []float64{100, 100, 100}
	groups := binGroups(metric, []int{1}, 10, DirUp)
	if len(groups) != 1 || len(groups[0].ops) != 1 || groups[0].ops[0] != 1 {
		t.Fatalf("groups = %+v, want single group [1]", groups)
	}
}

func TestBinGroupsEmptyCandidates(t *testing.T) {
	if groups := binGroups([]float64{1, 2}, nil, 10, DirUp); len(groups) != 0 {
		t.Fatalf("groups = %+v, want none", groups)
	}
}

func TestBinGroupsBaseTwoSplitsFiner(t *testing.T) {
	metric := []float64{1, 2, 4, 8}
	groups := binGroups(metric, []int{0, 1, 2, 3}, 2, DirUp)
	if len(groups) != 4 {
		t.Fatalf("base-2 binning produced %d groups, want 4", len(groups))
	}
}

func TestDirectionString(t *testing.T) {
	if DirUp.String() != "up" || DirDown.String() != "down" || DirNone.String() != "none" {
		t.Fatal("direction names wrong")
	}
}

func TestDecisionString(t *testing.T) {
	if DecisionContinue.String() != "continue" || DecisionStay.String() != "stay" ||
		DecisionChange.String() != "change" || Decision(0).String() != "unknown" {
		t.Fatal("decision names wrong")
	}
}
