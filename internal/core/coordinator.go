package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// staleChangeLimit bounds how many consecutive placement changes may fail
// to improve the best settled throughput before the coordinator stabilizes.
const staleChangeLimit = 3

// Coordinator runs the multi-level elastic scheme of Fig. 7: thread count
// is the primary adjustment, threading model the secondary one, and the two
// alternate — a thread-count change whose gain is unsatisfying triggers a
// threading-model exploration in the direction the history record suggests.
// Exploration starts from minimum parallelism (no queues, minimum threads),
// the adjustment direction the paper found both more accurate and less
// prone to oversubscription (§3.2).
type Coordinator struct {
	eng Engine
	cfg Config
	rng *rand.Rand

	// mu guards all mutable state below so Trace, Settled, SettleTime and
	// Stats can be read while Run advances the adaptation in another
	// goroutine. Observe itself runs outside the lock (it blocks for an
	// adaptation period on live engines).
	mu sync.Mutex

	trace Trace
	hist  history

	tm            *tmRun
	tc            *tcRun
	pending       *tcChange
	initialTMDone bool

	// Escalation probing: when neither component can improve at the
	// current thread count but headroom remains, the coordinator
	// multiplicatively raises the thread count and re-runs threading-model
	// elasticity there before concluding that the system has converged.
	// This resolves the chicken-and-egg interaction where scheduler
	// queues only pay off at thread counts that thread-count elasticity
	// alone would never reach (it sees no gain while there are no queues).
	probing           bool
	probeStartThreads int
	probeStartThr     float64
	probeTM           bool
	// settleNext defers entering the settled state by one observation so
	// settledThr is measured on the final (possibly just-reverted)
	// configuration rather than on the last probe.
	settleNext bool
	// finalDownDone records that the pre-settle DOWN exploration (the
	// enhanced multi-level elasticity of §3.3, which can also revert
	// operators to the manual model) has run for the current placement.
	finalDownDone bool
	// bestSeenThr and staleChanges implement the diminishing-returns stop:
	// placement changes that fail to beat the best settled throughput by
	// SENS are tolerated a bounded number of times before the coordinator
	// stabilizes, preventing endless refinement churn on rugged
	// configuration landscapes.
	bestSeenThr  float64
	staleChanges int

	settled    bool
	settledThr float64
	settleAt   time.Duration
	everSet    bool
	deviate    int

	// frozen gates adaptation without stopping observation: a health
	// watchdog freezes the coordinator while its PE is unhealthy, because
	// adapting to measurements taken during a fault window would chase
	// noise (and could thrash placement exactly when the runtime is trying
	// to recover). Frozen steps record a trace event and change nothing.
	frozen atomic.Bool

	// observer, when set, receives every trace event as it is recorded —
	// the flight recorder's feed of elasticity decisions. Guarded by mu.
	observer func(TraceEvent)

	// stats for SASO accounting
	tmRuns        int
	tmRunsSkipped int
}

// NewCoordinator resets the engine to the starting configuration (all
// operators manual, minimum threads) and returns a coordinator ready to
// adapt it.
func NewCoordinator(eng Engine, cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		eng: eng,
		cfg: cfg,
		rng: newSeededRand(cfg.Seed),
	}
	if err := eng.ApplyPlacement(make([]bool, eng.NumOperators())); err != nil {
		return nil, fmt.Errorf("reset placement: %w", err)
	}
	minT := cfg.MinThreads
	if m := c.maxThreads(); minT > m {
		minT = m
	}
	if err := eng.SetThreadCount(minT); err != nil {
		return nil, fmt.Errorf("reset thread count: %w", err)
	}
	return c, nil
}

// newSeededRand builds the deterministic source for within-group operator
// selection.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func (c *Coordinator) maxThreads() int {
	m := c.eng.MaxThreads()
	if c.cfg.MaxThreads > 0 && c.cfg.MaxThreads < m {
		m = c.cfg.MaxThreads
	}
	return m
}

// Step performs one adaptation period: observe throughput, then let the
// active elastic component adjust. It reports whether the coordinator is in
// the settled state after the step.
func (c *Coordinator) Step() (bool, error) {
	thr, err := c.eng.Observe()
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.settled, fmt.Errorf("observe: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen.Load() {
		c.record(TraceEvent{
			Time:       c.eng.Now(),
			Throughput: thr,
			Threads:    c.eng.ThreadCount(),
			Queues:     countQueues(c.eng),
			Phase:      PhaseFrozen,
			Note:       "adaptation frozen: PE unhealthy",
		})
		return c.settled, nil
	}
	phase, note, err := c.adapt(thr)
	c.record(TraceEvent{
		Time:       c.eng.Now(),
		Throughput: thr,
		Threads:    c.eng.ThreadCount(),
		Queues:     countQueues(c.eng),
		Phase:      phase,
		Note:       note,
	})
	if err != nil {
		return c.settled, err
	}
	return c.settled, nil
}

// adapt is the body of Fig. 7's adapt(), operating on the throughput
// observed for the currently applied configuration.
func (c *Coordinator) adapt(thr float64) (Phase, string, error) {
	if c.settled {
		return c.monitorSettled(thr)
	}
	if c.settleNext {
		c.settleNext = false
		c.enterSettled(thr)
		return PhaseSettled, "settled" + schedNote(c.eng), nil
	}

	// Initial phase (Fig. 7 init()): threading-model elasticity first, at
	// minimum threads, direction UP.
	if !c.initialTMDone && c.tm == nil {
		c.tm = newTMRun(c.eng, DirUp, c.cfg, c.rng)
		c.tmRuns++
	}
	// An escalation probe raised the thread count last period; explore the
	// threading model at the new count — unless the raised count alone
	// already degraded throughput, in which case the probe is hopeless and
	// is abandoned immediately.
	if c.probeTM && c.tm == nil {
		c.probeTM = false
		if thr < c.probeStartThr*(1-c.cfg.Sens) {
			n, err := c.abortProbe()
			return PhaseTC, n, err
		}
		c.tm = newTMRun(c.eng, DirUp, c.cfg, c.rng)
		c.tmRuns++
	}

	if c.tm != nil {
		return c.stepTM(thr)
	}
	return c.stepTC(thr)
}

// stepTM advances the secondary (threading model) component.
func (c *Coordinator) stepTM(thr float64) (Phase, string, error) {
	phase := PhaseTM
	if !c.initialTMDone {
		phase = PhaseInitTM
	}
	d, err := c.tm.Step(thr)
	if err != nil {
		return phase, c.tm.Note(), err
	}
	note := c.tm.Note()
	switch d {
	case DecisionContinue:
		return phase, note, nil
	case DecisionChange:
		c.hist.noteChange(c.eng.Placement(), c.eng.ThreadCount())
		if thr > c.bestSeenThr*(1+c.cfg.Sens) {
			c.bestSeenThr = thr
			c.staleChanges = 0
		} else {
			c.staleChanges++
		}
		if c.staleChanges >= staleChangeLimit {
			// Repeated placement changes without global improvement:
			// stop refining and stabilize with what we have.
			c.tm = nil
			c.initialTMDone = true
			n2, err := c.finishProbe(thr)
			return phase, note + "; refinement exhausted; " + n2, err
		}
		// Iterative refinement (§3.2): a new queue placement may support a
		// different thread count, so thread-count elasticity re-explores
		// from the current count. A successful probe ends probing.
		c.tc = nil
		c.probing = false
		// A new placement may have different excess queues; allow another
		// pre-settle DOWN pass.
		c.finalDownDone = false
	case DecisionStay:
		c.hist.noteStay(c.eng.Placement(), c.eng.ThreadCount())
	}
	c.tm = nil
	c.initialTMDone = true
	// Hand control back to thread-count elasticity (Fig. 7 lines 21-22),
	// unless neither component can improve further (Fig. 5e) — then probe
	// higher thread counts before stabilizing (Fig. 5f).
	if d == DecisionStay {
		if c.probing {
			n2, err := c.maybeSettle(thr)
			return phase, note + "; " + n2, err
		}
		if c.tcFinished() && c.pending == nil {
			n2, err := c.maybeSettle(thr)
			return phase, note + "; " + n2, err
		}
	}
	return phase, note, nil
}

// stepTC advances the primary (thread count) component and applies the
// satisfaction-factor and history checks of Fig. 7 lines 7-15.
func (c *Coordinator) stepTC(thr float64) (Phase, string, error) {
	// First, evaluate the thread-count change this observation measured.
	if p := c.pending; p != nil {
		c.pending = nil
		if trigger, dir := c.shouldTriggerTM(p, thr); trigger {
			c.tm = newTMRun(c.eng, dir, c.cfg, c.rng)
			c.tmRuns++
			return c.stepTM(thr)
		}
		c.tmRunsSkipped++
	}

	if c.tc == nil {
		c.tc = newTCRun(c.eng, c.cfg)
	}
	change, done, err := c.tc.Step(thr)
	if err != nil {
		return PhaseTC, c.tc.Note(), err
	}
	note := c.tc.Note()
	if change != nil {
		c.pending = change
	}
	if done && change == nil {
		// Thread exploration is complete and the final configuration has
		// been evaluated (Fig. 5e): probe for headroom, then settle.
		n2, err := c.maybeSettle(thr)
		return PhaseTC, note + "; " + n2, err
	}
	return PhaseTC, note, nil
}

// maybeSettle is called when neither elastic component can improve at the
// current thread count. If thread headroom remains it escalates: doubles
// the thread count and schedules a threading-model exploration there. Once
// the maximum has been probed without improvement, it reverts to the last
// good thread count and settles.
func (c *Coordinator) maybeSettle(thr float64) (string, error) {
	// Before concluding, explore whether reverting operators to the manual
	// model improves throughput at the final thread count (§3.3: "when
	// exploring the effect of decreasing the number of operators under
	// dynamic threading model, the same algorithm is used in the reverse
	// order"). This is what strips queues that earlier, lower thread
	// counts justified but the final configuration does not.
	if !c.finalDownDone {
		c.finalDownDone = true
		c.tm = newTMRun(c.eng, DirDown, c.cfg, c.rng)
		c.tmRuns++
		return "final down-exploration", nil
	}
	cur := c.eng.ThreadCount()
	max := c.maxThreads()
	if cur >= max {
		return c.finishProbe(thr)
	}
	if !c.probing {
		c.probing = true
		c.probeStartThreads = cur
		c.probeStartThr = thr
	}
	next := cur * 2
	if next > max {
		next = max
	}
	if err := c.eng.SetThreadCount(next); err != nil {
		return "", fmt.Errorf("probe threads: %w", err)
	}
	c.probeTM = true
	return fmt.Sprintf("probing %d threads", next), nil
}

// finishProbe reverts an unsuccessful escalation and enters the settled
// state (deferring by one observation when a revert occurred, so the
// settled throughput is measured on the final configuration).
func (c *Coordinator) finishProbe(thr float64) (string, error) {
	if c.probing {
		c.probing = false
		if c.probeStartThreads > 0 && c.probeStartThreads != c.eng.ThreadCount() {
			if err := c.eng.SetThreadCount(c.probeStartThreads); err != nil {
				return "", fmt.Errorf("probe revert: %w", err)
			}
			c.settleNext = true
			return fmt.Sprintf("probe found nothing; reverting to %d threads", c.probeStartThreads), nil
		}
	}
	// Settle on the next observation so the recorded settled throughput is
	// measured on the final configuration — the concluding observation of
	// a search may still reflect its last (reverted) trial.
	c.settleNext = true
	return "settling", nil
}

// abortProbe abandons an escalation whose raised thread count degraded
// throughput outright.
func (c *Coordinator) abortProbe() (string, error) {
	c.probing = false
	if err := c.eng.SetThreadCount(c.probeStartThreads); err != nil {
		return "", fmt.Errorf("probe revert: %w", err)
	}
	c.settleNext = true
	return fmt.Sprintf("probe degraded throughput; reverting to %d threads", c.probeStartThreads), nil
}

// shouldTriggerTM decides whether an observed thread-count change warrants
// a threading-model exploration, and in which direction.
func (c *Coordinator) shouldTriggerTM(p *tcChange, thr float64) (bool, Direction) {
	// Satisfaction factor (§3.3): when the thread increase alone already
	// bought a proportionally large gain, skip the secondary adjustment.
	// The gain must exceed the sensitivity threshold so measurement noise
	// cannot masquerade as satisfaction.
	if c.cfg.UseSatisfaction && p.toT > p.fromT && p.fromThr > 0 {
		gain := thr/p.fromThr - 1
		threadGain := float64(p.toT)/float64(p.fromT) - 1
		if threadGain > 0 && gain > c.cfg.Sens && gain/threadGain > c.cfg.SatisfactionThreshold {
			return false, DirNone
		}
	}
	// Learning from history (§3.3): skip when the new count lies inside
	// the known-good thread range of the current placement.
	if c.cfg.UseHistory {
		dir := c.hist.direction(c.eng.Placement(), p.toT)
		if dir == DirNone {
			return false, DirNone
		}
		return true, dir
	}
	// Without the history optimization, every thread-count change triggers
	// threading-model elasticity; the direction follows the change.
	if p.toT >= p.fromT {
		return true, DirUp
	}
	return true, DirDown
}

func (c *Coordinator) tcFinished() bool {
	return c.tc != nil && c.tc.finished
}

func (c *Coordinator) enterSettled(thr float64) {
	c.settled = true
	c.settledThr = thr
	c.deviate = 0
	if !c.everSet {
		c.everSet = true
	}
	c.settleAt = c.eng.Now()
}

// monitorSettled watches for workload changes once adaptation has
// converged; a sustained throughput deviation restarts exploration from the
// current configuration (Fig. 13).
func (c *Coordinator) monitorSettled(thr float64) (Phase, string, error) {
	dev := relDeviation(thr, c.settledThr)
	if dev > c.cfg.WorkloadChangeSens {
		c.deviate++
		if c.deviate >= c.cfg.WorkloadChangePatience {
			c.restart()
			return PhaseSettled, fmt.Sprintf("workload change detected (%.0f%% deviation); re-adapting", dev*100), nil
		}
		return PhaseSettled, "throughput deviation", nil
	}
	c.deviate = 0
	// Track slow drift so gradual load changes do not trip the detector.
	c.settledThr = 0.95*c.settledThr + 0.05*thr
	return PhaseSettled, "", nil
}

// schedNote annotates a trace note with the engine's work-stealing counters
// when the substrate exposes them (see SchedSampler); empty otherwise.
func schedNote(eng Engine) string {
	s, ok := eng.(SchedSampler)
	if !ok {
		return ""
	}
	local, steals, overflows, injected := s.SchedCounts()
	return fmt.Sprintf("; sched local=%d steals=%d overflow=%d injected=%d",
		local, steals, overflows, injected)
}

// restart clears all exploration state but keeps the current configuration
// as the starting point for re-adaptation.
func (c *Coordinator) restart() {
	c.settled = false
	c.deviate = 0
	c.hist.clear()
	c.tm = nil
	c.tc = nil
	c.pending = nil
	c.initialTMDone = false
	c.probing = false
	c.probeTM = false
	c.settleNext = false
	c.finalDownDone = false
	c.bestSeenThr = 0
	c.staleChanges = 0
}

func relDeviation(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := a/b - 1
	if d < 0 {
		d = -d
	}
	return d
}

func countQueues(e Engine) int {
	n := 0
	place := e.Placement()
	able := e.Placeable()
	for i, dyn := range place {
		if dyn && able[i] {
			n++
		}
	}
	return n
}

// Run steps the coordinator until the context is cancelled. It keeps
// monitoring after settling so workload changes re-trigger adaptation.
func (c *Coordinator) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if _, err := c.Step(); err != nil {
			return err
		}
	}
}

// RunUntilSettled steps the coordinator until it reaches the settled state
// or maxSteps observations have been consumed, returning the number of
// steps taken and whether it settled.
func (c *Coordinator) RunUntilSettled(maxSteps int) (int, bool, error) {
	for i := 1; i <= maxSteps; i++ {
		settled, err := c.Step()
		if err != nil {
			return i, settled, err
		}
		if settled {
			return i, true, nil
		}
	}
	return maxSteps, false, nil
}

// SetFrozen gates adaptation: while frozen the coordinator keeps observing
// (and tracing) but applies no placement or thread-count changes. It
// implements the watchdog's Freezer surface; thawing resumes exploration
// exactly where it stopped.
func (c *Coordinator) SetFrozen(frozen bool) { c.frozen.Store(frozen) }

// Frozen reports whether adaptation is currently gated.
func (c *Coordinator) Frozen() bool { return c.frozen.Load() }

// Settled reports whether adaptation has converged.
func (c *Coordinator) Settled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.settled
}

// SettleTime returns the engine clock at the most recent settling.
func (c *Coordinator) SettleTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.settleAt
}

// record appends a trace event and forwards it to the observer. The caller
// holds c.mu.
func (c *Coordinator) record(ev TraceEvent) {
	c.trace.add(ev)
	if c.observer != nil {
		c.observer(ev)
	}
}

// SetObserver installs fn to receive every trace event as it is recorded —
// the hook the flight recorder uses to capture elasticity decisions. fn runs
// under the coordinator's lock, so it must be cheap and must not call back
// into the coordinator.
func (c *Coordinator) SetObserver(fn func(TraceEvent)) {
	c.mu.Lock()
	c.observer = fn
	c.mu.Unlock()
}

// Trace returns a copy of the adaptation trace.
func (c *Coordinator) Trace() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace.Events()
}

// Stats summarizes the coordinator's exploration effort.
type Stats struct {
	// TMRuns is the number of threading-model explorations started.
	TMRuns int
	// TMRunsSkipped counts thread-count changes whose secondary adjustment
	// was skipped by the satisfaction factor or history optimizations.
	TMRunsSkipped int
	// HistoryEntries is the number of placement records accumulated.
	HistoryEntries int
}

// Stats returns exploration-effort counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		TMRuns:         c.tmRuns,
		TMRunsSkipped:  c.tmRunsSkipped,
		HistoryEntries: c.hist.Len(),
	}
}
