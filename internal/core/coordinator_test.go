package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func settleCoordinator(t *testing.T, f *fakeEngine, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := c.RunUntilSettled(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("coordinator did not settle within 2000 steps")
	}
	return c
}

func TestCoordinatorResetsEngineToMinimum(t *testing.T) {
	f := heavyLightEngine()
	if err := f.SetThreadCount(16); err != nil {
		t.Fatal(err)
	}
	all := make([]bool, f.NumOperators())
	for i := 1; i < len(all); i++ {
		all[i] = true
	}
	if err := f.ApplyPlacement(all); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(f, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if f.ThreadCount() != 2 {
		t.Fatalf("thread count after reset = %d, want 2", f.ThreadCount())
	}
	if f.dynCount() != 0 {
		t.Fatalf("placement after reset has %d dynamic ops, want 0", f.dynCount())
	}
}

func TestCoordinatorRejectsBadConfig(t *testing.T) {
	f := heavyLightEngine()
	bad := []Config{
		{Sens: -1, GroupBase: 10, MinThreads: 1},
		{Sens: 0.05, GroupBase: 1, MinThreads: 1},
		{Sens: 0.05, GroupBase: 10, MinThreads: 0},
		{Sens: 0.05, GroupBase: 10, MinThreads: 1, MaxThreads: -1},
		{Sens: 0.05, GroupBase: 10, MinThreads: 1, SatisfactionThreshold: 2},
		{Sens: 0.05, GroupBase: 10, MinThreads: 1, WorkloadChangeSens: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(f, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCoordinatorSettlesAndImproves(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())

	trace := c.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	first := trace[0].Throughput
	final := trace[len(trace)-1].Throughput
	if final < first*2 {
		t.Fatalf("converged throughput %v is not at least 2x initial %v", final, first)
	}
	// The heavy operators must have been made dynamic.
	place := f.Placement()
	for op := 1; op <= 4; op++ {
		if !place[op] {
			t.Fatalf("heavy op %d manual at convergence: %v", op, place)
		}
	}
	if f.ThreadCount() < 2 {
		t.Fatalf("thread count %d at convergence, want > 1", f.ThreadCount())
	}
	if !c.Settled() {
		t.Fatal("Settled() = false after RunUntilSettled succeeded")
	}
	if c.SettleTime() <= 0 {
		t.Fatal("settle time not recorded")
	}
}

func TestCoordinatorAccuracyNearOptimum(t *testing.T) {
	// Accuracy (SASO): the converged throughput must be close to the best
	// achievable configuration, found here by exhaustive search over
	// (heavy-dynamic-count, light-dynamic-count, threads).
	f := heavyLightEngine()
	best := 0.0
	for h := 0; h <= 4; h++ {
		for l := 0; l <= 8; l++ {
			for threads := 1; threads <= 32; threads++ {
				p := make([]bool, f.NumOperators())
				for i := 1; i <= h; i++ {
					p[i] = true
				}
				for i := 5; i < 5+l; i++ {
					p[i] = true
				}
				copy(f.placement, p)
				f.threads = threads
				if thr := f.throughput(); thr > best {
					best = thr
				}
			}
		}
	}
	f2 := heavyLightEngine()
	c := settleCoordinator(t, f2, DefaultConfig())
	tr := c.Trace()
	final := tr[len(tr)-1].Throughput
	if final < 0.8*best {
		t.Fatalf("converged throughput %v < 80%% of optimum %v", final, best)
	}
}

func TestCoordinatorNoOvershootAtConvergence(t *testing.T) {
	// Avoiding overshoot (SASO): once settled, the thread count must not
	// exceed the maximum explored during adaptation, and must be at most
	// what the pool can use.
	f := poolEngine(32, 9, 128)
	c := settleCoordinator(t, f, DefaultConfig())
	maxExplored := 0
	for _, e := range c.Trace() {
		if e.Threads > maxExplored {
			maxExplored = e.Threads
		}
	}
	if f.ThreadCount() > maxExplored {
		t.Fatalf("converged threads %d exceed explored max %d", f.ThreadCount(), maxExplored)
	}
	if f.ThreadCount() > 16 {
		t.Fatalf("converged threads %d overshoot the 8-thread saturation", f.ThreadCount())
	}
}

func TestCoordinatorStability(t *testing.T) {
	// Stability (SASO): after settling, continued steps must not change
	// the configuration when the workload is steady.
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	place := f.Placement()
	threads := f.ThreadCount()
	for i := 0; i < 50; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !placementsEqual(place, f.Placement()) || threads != f.ThreadCount() {
		t.Fatal("configuration changed while settled under steady workload")
	}
}

func TestCoordinatorWorkloadChangeTriggersReadaptation(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	settledThreads := f.ThreadCount()

	// Halve the throughput of every configuration: a workload phase
	// change. The coordinator must detect it and re-adapt.
	f.perturb = func(thr float64) float64 { return thr * 0.4 }
	resettled := false
	for i := 0; i < 2000; i++ {
		settled, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !settled {
			resettled = true // left the settled state at least once
		}
		if resettled && settled {
			break
		}
	}
	if !resettled {
		t.Fatal("workload change did not trigger re-adaptation")
	}
	if !c.Settled() {
		t.Fatal("coordinator did not re-settle after workload change")
	}
	_ = settledThreads
}

func TestCoordinatorSatisfactionSkipsTMRuns(t *testing.T) {
	f1 := poolEngine(64, 128, 128)
	cfgNoSat := DefaultConfig()
	cfgNoSat.UseSatisfaction = false
	cfgNoSat.UseHistory = false
	c1 := settleCoordinator(t, f1, cfgNoSat)

	f2 := poolEngine(64, 128, 128)
	cfgSat := DefaultConfig()
	cfgSat.UseSatisfaction = true
	cfgSat.UseHistory = false
	cfgSat.SatisfactionThreshold = 0
	c2 := settleCoordinator(t, f2, cfgSat)

	if c2.Stats().TMRuns >= c1.Stats().TMRuns {
		t.Fatalf("satisfaction factor did not reduce TM runs: %d vs %d",
			c2.Stats().TMRuns, c1.Stats().TMRuns)
	}
	if c2.Stats().TMRunsSkipped == 0 {
		t.Fatal("no skips recorded with satisfaction factor enabled")
	}
}

func TestCoordinatorHistoryShortensAdaptation(t *testing.T) {
	f1 := heavyLightEngine()
	cfgNo := DefaultConfig()
	cfgNo.UseHistory = false
	cfgNo.UseSatisfaction = false
	c1, err := NewCoordinator(f1, cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	steps1, ok, err := c1.RunUntilSettled(2000)
	if err != nil || !ok {
		t.Fatalf("baseline did not settle: %v", err)
	}

	f2 := heavyLightEngine()
	cfgHist := DefaultConfig()
	cfgHist.UseHistory = true
	cfgHist.UseSatisfaction = false
	c2, err := NewCoordinator(f2, cfgHist)
	if err != nil {
		t.Fatal(err)
	}
	steps2, ok, err := c2.RunUntilSettled(2000)
	if err != nil || !ok {
		t.Fatalf("history run did not settle: %v", err)
	}
	if steps2 > steps1 {
		t.Fatalf("history lengthened adaptation: %d vs %d steps", steps2, steps1)
	}
	if c2.Stats().HistoryEntries == 0 {
		t.Fatal("no history entries recorded")
	}
}

func TestCoordinatorObserveErrorPropagates(t *testing.T) {
	f := heavyLightEngine()
	c, err := NewCoordinator(f, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.failObserve = true
	if _, err := c.Step(); err == nil {
		t.Fatal("observe failure did not propagate")
	}
}

func TestCoordinatorRunHonorsContext(t *testing.T) {
	f := heavyLightEngine()
	c, err := NewCoordinator(f, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Run(ctx); err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

func TestCoordinatorTraceCSV(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	var buf bytes.Buffer
	var tr Trace
	for _, e := range c.Trace() {
		tr.add(e)
	}
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.Len()+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), tr.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "time_s,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestHistoryDirection(t *testing.T) {
	var h history
	p := []bool{true, false}
	if h.direction(p, 8) != DirUp {
		t.Fatal("empty history must default to DirUp")
	}
	h.noteChange(p, 8)
	h.noteStay(p, 16)
	if d := h.direction(p, 12); d != DirNone {
		t.Fatalf("direction inside [8,16] = %v, want none", d)
	}
	if d := h.direction(p, 32); d != DirUp {
		t.Fatalf("direction above range = %v, want up", d)
	}
	if d := h.direction(p, 4); d != DirDown {
		t.Fatalf("direction below range = %v, want down", d)
	}
	other := []bool{false, true}
	if d := h.direction(other, 12); d != DirUp {
		t.Fatalf("direction for unknown placement = %v, want up", d)
	}
	h.noteStay(other, 4) // creates a new entry since placement differs
	if h.Len() != 2 {
		t.Fatalf("history length = %d, want 2", h.Len())
	}
	h.clear()
	if h.Len() != 0 {
		t.Fatal("clear left entries behind")
	}
}

func TestRelDeviation(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{0, 0, 0},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := relDeviation(c.a, c.b); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Fatalf("relDeviation(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Sens != 0.05 {
		t.Fatalf("default SENS = %v, want 0.05 (§3.1.1)", cfg.Sens)
	}
	if !cfg.UseHistory || !cfg.UseSatisfaction {
		t.Fatal("default config must enable both §3.3 optimizations")
	}
	if cfg.MinThreads != 2 {
		t.Fatalf("default MinThreads = %d, want 2 (Fig. 5a: two initially idle scheduler threads)", cfg.MinThreads)
	}
}

func TestCoordinatorSettleTimeMonotonicClock(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	tr := c.Trace()
	var prev time.Duration = -1
	for i, e := range tr {
		if e.Time <= prev {
			t.Fatalf("trace time not strictly increasing at %d: %v <= %v", i, e.Time, prev)
		}
		prev = e.Time
	}
}

func TestConfigSnapshotWarmStart(t *testing.T) {
	// Converge once and capture the configuration.
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	snap := c.ConfigSnapshot()
	if snap.Threads != f.ThreadCount() || len(snap.Placement) != f.NumOperators() {
		t.Fatalf("snapshot %+v does not match engine", snap)
	}
	if snap.Throughput <= 0 {
		t.Fatal("snapshot throughput not recorded")
	}

	// Warm-start a fresh engine from the snapshot: it must be settled
	// after a single observation, at the converged configuration.
	f2 := heavyLightEngine()
	c2, err := NewCoordinatorFrom(f2, DefaultConfig(), snap)
	if err != nil {
		t.Fatal(err)
	}
	settled, err := c2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatal("warm-started coordinator not settled after one observation")
	}
	if f2.ThreadCount() != snap.Threads {
		t.Fatalf("threads = %d, want %d", f2.ThreadCount(), snap.Threads)
	}
	if !placementsEqual(f2.Placement(), snap.Placement) {
		t.Fatal("placement not restored")
	}
	// Workload-change monitoring still works from the warm state.
	f2.perturb = func(thr float64) float64 { return thr * 0.3 }
	left := false
	for i := 0; i < 500; i++ {
		s, err := c2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !s {
			left = true
			break
		}
	}
	if !left {
		t.Fatal("warm-started coordinator ignored a workload change")
	}
}

func TestConfigSnapshotRoundTripsJSON(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	snap := c.ConfigSnapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back ConfigSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Threads != snap.Threads || !placementsEqual(back.Placement, snap.Placement) {
		t.Fatalf("JSON round trip mismatch: %+v vs %+v", back, snap)
	}
}

func TestNewCoordinatorFromValidation(t *testing.T) {
	f := heavyLightEngine()
	if _, err := NewCoordinatorFrom(f, DefaultConfig(), ConfigSnapshot{Placement: make([]bool, 2), Threads: 1}); err == nil {
		t.Fatal("wrong-length snapshot accepted")
	}
	if _, err := NewCoordinatorFrom(f, DefaultConfig(), ConfigSnapshot{Placement: make([]bool, f.NumOperators()), Threads: 0}); err == nil {
		t.Fatal("zero-thread snapshot accepted")
	}
	bad := DefaultConfig()
	bad.Sens = -1
	if _, err := NewCoordinatorFrom(f, bad, ConfigSnapshot{Placement: make([]bool, f.NumOperators()), Threads: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
