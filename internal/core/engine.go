// Package core implements the paper's contribution: the multi-level
// performance-elastic control plane. It contains the threading-model
// elasticity controller (operator cost binning plus the trend-guided R1–R5
// search of §3.1), the thread-count elasticity controller (after Schneider &
// Wu, PLDI '17), and the coordinator of Fig. 7 that runs them as primary
// (thread count) and secondary (threading model) adjustments with the
// learning-from-history and satisfaction-factor optimizations of §3.3.
//
// The controllers are substrate-agnostic: they program any Engine, whether
// the live goroutine runtime (internal/exec) or the simulated machine
// (internal/sim).
package core

import (
	"errors"
	"time"
)

// Engine is the runtime surface the elastic controllers adjust. Both the
// live engine and the simulated machine implement it.
type Engine interface {
	// NumOperators returns the number of operators in the graph.
	NumOperators() int
	// Placeable reports, per operator, whether a scheduler queue may be
	// placed in front of it (sources are not placeable: they always run on
	// their own operator threads).
	Placeable() []bool
	// CostMetric returns the profiler's relative cost metric per operator.
	CostMetric() []float64
	// Placement returns the current threading-model choice per operator:
	// true means dynamic (scheduler queue present).
	Placement() []bool
	// ApplyPlacement reconfigures the scheduler queues to match dynamic.
	ApplyPlacement(dynamic []bool) error
	// ThreadCount returns the current number of scheduler threads.
	ThreadCount() int
	// SetThreadCount adjusts the scheduler-thread pool size.
	SetThreadCount(n int) error
	// MaxThreads returns the largest thread count the engine permits.
	MaxThreads() int
	// Observe runs the engine for one adaptation period and returns the
	// throughput measured at the sinks in tuples per second.
	Observe() (float64, error)
	// Now returns the engine clock, virtual for simulated engines.
	Now() time.Duration
}

// SchedSampler is an optional Engine extension exposing work-stealing
// scheduler counters (emit-affinity pushes, steals, deque overflows, and
// shared-queue injections). The live engine implements it; the simulator
// does not. The coordinator uses it for trace annotations only — control
// decisions never depend on it, which keeps the controllers comparable
// across substrates.
type SchedSampler interface {
	SchedCounts() (local, steals, overflows, injected uint64)
}

// Config tunes the elastic controllers. The zero value is not useful; call
// DefaultConfig and override fields as needed.
type Config struct {
	// Sens is the sensitivity threshold SENS of §3.1.1: the minimum
	// relative throughput difference treated as a real trend rather than
	// noise. The paper uses 0.05.
	Sens float64
	// SatisfactionThreshold is THRE of Fig. 7: when the relative
	// throughput gain of a thread-count increase exceeds this fraction of
	// the relative thread increase, the secondary (threading model)
	// adjustment is skipped. The paper evaluates 0.6 and 0.
	SatisfactionThreshold float64
	// UseHistory enables the learning-from-history optimization (§3.3).
	UseHistory bool
	// UseSatisfaction enables the satisfaction-factor optimization (§3.3).
	UseSatisfaction bool
	// GroupBase is the base of the logarithmic cost binning that forms
	// profiling groups (§3.1, observation O2). The default is 10, which
	// separates the paper's 1 / 100 / 10000 FLOP cost classes.
	GroupBase float64
	// MinThreads is the scheduler-thread count the exploration starts
	// from; the paper starts from minimum parallelism (§3.2) with two
	// initially-idle scheduler threads (Fig. 5a).
	MinThreads int
	// MaxThreads caps the thread exploration; 0 means the engine's
	// maximum.
	MaxThreads int
	// Seed drives the arbitrary within-group operator selection (§3.1.1).
	Seed int64
	// WorkloadChangeSens is the relative throughput deviation, observed in
	// the settled state, treated as a workload change that restarts
	// adaptation.
	WorkloadChangeSens float64
	// WorkloadChangePatience is how many consecutive deviating periods are
	// required before re-adaptation starts.
	WorkloadChangePatience int
}

// DefaultConfig returns the paper's operating point: SENS 0.05,
// satisfaction threshold 0.6, both optimizations on.
func DefaultConfig() Config {
	return Config{
		Sens:                   0.05,
		SatisfactionThreshold:  0.6,
		UseHistory:             true,
		UseSatisfaction:        true,
		GroupBase:              10,
		MinThreads:             2,
		Seed:                   1,
		WorkloadChangeSens:     0.25,
		WorkloadChangePatience: 2,
	}
}

func (c Config) validate() error {
	if c.Sens < 0 || c.Sens >= 1 {
		return errors.New("config: Sens must be in [0, 1)")
	}
	if c.SatisfactionThreshold < 0 || c.SatisfactionThreshold > 1 {
		return errors.New("config: SatisfactionThreshold must be in [0, 1]")
	}
	if c.GroupBase <= 1 {
		return errors.New("config: GroupBase must be > 1")
	}
	if c.MinThreads < 1 {
		return errors.New("config: MinThreads must be >= 1")
	}
	if c.MaxThreads < 0 {
		return errors.New("config: MaxThreads must be >= 0")
	}
	if c.WorkloadChangeSens < 0 {
		return errors.New("config: WorkloadChangeSens must be >= 0")
	}
	return nil
}

// Direction is the threading-model adjustment direction: UP adds scheduler
// queues (more operators go dynamic), DOWN removes them.
type Direction int

// Adjustment directions.
const (
	DirNone Direction = iota
	DirUp
	DirDown
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return "none"
	}
}

// Decision is the outcome of a threading-model elasticity run, per Fig. 4.
type Decision int

// Threading-model run outcomes.
const (
	// DecisionContinue means the run proposed a new placement and needs
	// another observation.
	DecisionContinue Decision = iota + 1
	// DecisionStay means the run finished without changing the placement.
	DecisionStay
	// DecisionChange means the run finished with a different placement.
	DecisionChange
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case DecisionContinue:
		return "continue"
	case DecisionStay:
		return "stay"
	case DecisionChange:
		return "change"
	default:
		return "unknown"
	}
}
