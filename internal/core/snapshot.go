package core

import "fmt"

// ConfigSnapshot captures a converged elastic configuration so a restarted
// PE can warm-start with its learned threading model and thread count
// instead of re-exploring from scratch. Long-running streaming applications
// restart for upgrades and failures; re-learning a configuration that took
// minutes to find is wasted adaptation.
type ConfigSnapshot struct {
	// Placement is the threading-model choice per operator.
	Placement []bool `json:"placement"`
	// Threads is the scheduler-thread count.
	Threads int `json:"threads"`
	// Throughput is the settled throughput when the snapshot was taken,
	// informational only.
	Throughput float64 `json:"throughput"`
}

// ConfigSnapshot captures the engine's current configuration together with
// the last settled throughput.
func (c *Coordinator) ConfigSnapshot() ConfigSnapshot {
	c.mu.Lock()
	thr := c.settledThr
	c.mu.Unlock()
	return ConfigSnapshot{
		Placement:  c.eng.Placement(),
		Threads:    c.eng.ThreadCount(),
		Throughput: thr,
	}
}

// NewCoordinatorFrom restores a snapshot onto the engine and returns a
// coordinator that starts in the settled state: it monitors throughput and
// re-adapts only when the workload deviates, exactly as if it had converged
// to the snapshot itself.
func NewCoordinatorFrom(eng Engine, cfg Config, snap ConfigSnapshot) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(snap.Placement) != eng.NumOperators() {
		return nil, fmt.Errorf("core: snapshot covers %d operators, engine has %d",
			len(snap.Placement), eng.NumOperators())
	}
	if snap.Threads < 1 || snap.Threads > eng.MaxThreads() {
		return nil, fmt.Errorf("core: snapshot thread count %d outside [1, %d]",
			snap.Threads, eng.MaxThreads())
	}
	if err := eng.ApplyPlacement(snap.Placement); err != nil {
		return nil, fmt.Errorf("restore placement: %w", err)
	}
	if err := eng.SetThreadCount(snap.Threads); err != nil {
		return nil, fmt.Errorf("restore thread count: %w", err)
	}
	c := &Coordinator{
		eng: eng,
		cfg: cfg,
		rng: newSeededRand(cfg.Seed),
	}
	// The first observation measures the restored configuration and enters
	// the settled state directly.
	c.initialTMDone = true
	c.settleNext = true
	return c, nil
}
