package core

import "fmt"

// tcChange describes a thread-count adjustment whose effect has not been
// observed yet. The coordinator uses it for the satisfaction-factor check
// and for the history lookup of Fig. 7.
type tcChange struct {
	fromT   int
	toT     int
	fromThr float64
}

// tcRun is one thread-count elasticity exploration, modeled on the elastic
// scheduling of Schneider & Wu (PLDI '17): the thread count roughly doubles
// while throughput keeps improving, then binary-searches back once an
// increase degrades throughput. Like the threading-model search it stops on
// flat trends, immovable steps, or revisited counts, which bounds the
// exploration to O(log maxThreads) adjustments and prevents oscillation.
type tcRun struct {
	eng  Engine
	sens float64
	min  int
	max  int

	pos      int
	prevPerf float64
	stepSize int
	dirn     int
	reversed bool
	visited  map[int]float64
	bestPos  int
	bestPerf float64
	started  bool
	finished bool
	// descending marks the final phase: after the climb concludes, the run
	// halves the thread count while throughput stays within the noise band
	// of the best, settling on the fewest threads that serve the workload
	// (SASO: avoid overshoot).
	descending bool
	lastNote   string
}

// newTCRun prepares a thread-count exploration starting from the engine's
// current count.
func newTCRun(eng Engine, cfg Config) *tcRun {
	maxT := eng.MaxThreads()
	if cfg.MaxThreads > 0 && cfg.MaxThreads < maxT {
		maxT = cfg.MaxThreads
	}
	minT := cfg.MinThreads
	if minT > maxT {
		minT = maxT
	}
	return &tcRun{
		eng:     eng,
		sens:    cfg.Sens,
		min:     minT,
		max:     maxT,
		pos:     clampInt(eng.ThreadCount(), minT, maxT),
		visited: make(map[int]float64),
	}
}

// Step consumes the throughput observed under the current thread count. It
// returns the change it applied (nil when it did not adjust) and whether
// the exploration has finished.
func (r *tcRun) Step(perf float64) (*tcChange, bool, error) {
	if r.finished {
		return nil, true, nil
	}
	if !r.started {
		r.started = true
		r.visited[r.pos] = perf
		r.bestPos, r.bestPerf = r.pos, perf
		r.prevPerf = perf
		r.dirn = 1
		r.stepSize = r.pos // doubling: next = 2*pos
		next := clampInt(r.pos+r.stepSize, r.min, r.max)
		if next == r.pos {
			r.finished = true
			r.lastNote = "thread count: no headroom"
			return nil, true, nil
		}
		return r.move(next, perf)
	}

	r.visited[r.pos] = perf
	if r.descending {
		return r.stepDescent(perf)
	}
	// Track the best count seen; within the noise band, prefer fewer
	// threads (SASO: avoid overshoot — "does not use more threads than
	// necessary").
	if perf > r.bestPerf*(1+r.sens) ||
		(perf >= r.bestPerf*(1-r.sens) && r.pos < r.bestPos) {
		r.bestPos, r.bestPerf = r.pos, perf
	}
	improved := perf > r.prevPerf*(1+r.sens)
	worsened := perf < r.prevPerf*(1-r.sens)

	var next int
	switch {
	case improved:
		if r.reversed {
			r.stepSize = maxInt(1, r.stepSize/2)
		} else {
			// Keep doubling while increases pay off.
			r.stepSize = r.pos
		}
		next = clampInt(r.pos+r.dirn*r.stepSize, r.min, r.max)
	case worsened:
		r.dirn = -r.dirn
		r.reversed = true
		r.stepSize = maxInt(1, r.stepSize/2)
		next = clampInt(r.pos+r.dirn*r.stepSize, r.min, r.max)
	default:
		// Flat: more threads buy nothing. Switch to the descent phase.
		return r.beginDescent(perf)
	}
	if next == r.pos {
		return r.beginDescent(perf)
	}
	if _, seen := r.visited[next]; seen {
		return r.beginDescent(perf)
	}
	return r.move(next, perf)
}

// beginDescent starts halving from the best count seen during the climb.
func (r *tcRun) beginDescent(perf float64) (*tcChange, bool, error) {
	r.descending = true
	target := maxInt(r.min, r.bestPos/2)
	if target == r.bestPos {
		return r.finish(perf)
	}
	if _, seen := r.visited[target]; seen {
		return r.finish(perf)
	}
	return r.move(target, perf)
}

// stepDescent handles one descent observation: keep halving while the
// reduced pool still delivers throughput within the noise band of the best;
// settle at the best (fewest adequate) count otherwise.
func (r *tcRun) stepDescent(perf float64) (*tcChange, bool, error) {
	if perf >= r.bestPerf*(1-r.sens) {
		// Fewer threads serve the workload equally well: adopt them and
		// keep descending. The reference throughput stays at the climb's
		// best so chained within-band steps cannot drift downwards.
		r.bestPos = r.pos
		if perf > r.bestPerf {
			r.bestPerf = perf
		}
		target := maxInt(r.min, r.pos/2)
		if target == r.pos {
			return r.finish(perf)
		}
		if _, seen := r.visited[target]; seen {
			return r.finish(perf)
		}
		return r.move(target, perf)
	}
	return r.finish(perf)
}

func (r *tcRun) move(next int, perf float64) (*tcChange, bool, error) {
	from := r.pos
	if err := r.eng.SetThreadCount(next); err != nil {
		return nil, false, fmt.Errorf("thread count apply: %w", err)
	}
	r.prevPerf = perf
	r.pos = next
	r.lastNote = fmt.Sprintf("thread count: %d -> %d", from, next)
	return &tcChange{fromT: from, toT: next, fromThr: perf}, false, nil
}

func (r *tcRun) finish(perf float64) (*tcChange, bool, error) {
	r.finished = true
	if r.bestPos == r.pos {
		r.lastNote = fmt.Sprintf("thread count settled at %d", r.pos)
		return nil, true, nil
	}
	from := r.pos
	if err := r.eng.SetThreadCount(r.bestPos); err != nil {
		return nil, true, fmt.Errorf("thread count settle: %w", err)
	}
	r.pos = r.bestPos
	r.lastNote = fmt.Sprintf("thread count settled: revert %d -> %d", from, r.bestPos)
	return &tcChange{fromT: from, toT: r.bestPos, fromThr: perf}, true, nil
}

// Note returns a description of the run's most recent adjustment.
func (r *tcRun) Note() string { return r.lastNote }
