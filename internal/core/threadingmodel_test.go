package core

import (
	"math/rand"
	"testing"
)

// runTM drives a tmRun against the fake engine until it concludes,
// returning the final decision and the number of observations used.
func runTM(t *testing.T, f *fakeEngine, dir Direction, cfg Config) (Decision, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	run := newTMRun(f, dir, cfg, rng)
	for steps := 0; steps < 500; steps++ {
		thr, err := f.Observe()
		if err != nil {
			t.Fatal(err)
		}
		d, err := run.Step(thr)
		if err != nil {
			t.Fatal(err)
		}
		if d != DecisionContinue {
			return d, steps + 1
		}
	}
	t.Fatal("threading-model run did not terminate within 500 steps")
	return 0, 0
}

// heavyLightEngine builds a fake engine whose optimum is "heavy operators
// dynamic, light operators manual": 4 heavy ops at 100ms, 8 light ops at
// 1ms, with 5ms queue overhead. Making a heavy op dynamic removes 100ms
// from the serial source region at a cost of 105/threads in the pool;
// making a light op dynamic costs more overhead than it saves.
func heavyLightEngine() *fakeEngine {
	costs := []float64{0.001} // source
	for i := 0; i < 4; i++ {
		costs = append(costs, 0.100)
	}
	for i := 0; i < 8; i++ {
		costs = append(costs, 0.001)
	}
	return newFakeEngine(costs, 0.005, 64, 32)
}

func TestTMRunMovesHeavyOpsDynamic(t *testing.T) {
	f := heavyLightEngine()
	if err := f.SetThreadCount(8); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	d, _ := runTM(t, f, DirUp, cfg)
	if d != DecisionChange {
		t.Fatalf("decision = %v, want change", d)
	}
	place := f.Placement()
	for op := 1; op <= 4; op++ {
		if !place[op] {
			t.Fatalf("heavy op %d not dynamic; placement %v", op, place)
		}
	}
	// The light group must not be fully dynamic: queue overhead (5ms)
	// dwarfs light cost (1ms).
	lightDyn := 0
	for op := 5; op <= 12; op++ {
		if place[op] {
			lightDyn++
		}
	}
	if lightDyn == 8 {
		t.Fatalf("all light ops went dynamic; placement %v", place)
	}
}

func TestTMRunStaysWhenQueuesNeverPay(t *testing.T) {
	// One thread in the pool and enormous queue overhead: every placement
	// with queues is worse than pure manual.
	costs := []float64{0.001, 0.01, 0.01, 0.01}
	f := newFakeEngine(costs, 10.0, 64, 8)
	d, _ := runTM(t, f, DirUp, DefaultConfig())
	if d != DecisionStay {
		t.Fatalf("decision = %v, want stay", d)
	}
	if f.dynCount() != 0 {
		t.Fatalf("placement changed despite stay: %v", f.Placement())
	}
}

func TestTMRunDownRemovesUselessQueues(t *testing.T) {
	f := heavyLightEngine()
	if err := f.SetThreadCount(8); err != nil {
		t.Fatal(err)
	}
	// Start from everything dynamic; DOWN should strip queues from light
	// operators (cheapest group first).
	all := make([]bool, f.NumOperators())
	for i := 1; i < len(all); i++ {
		all[i] = true
	}
	if err := f.ApplyPlacement(all); err != nil {
		t.Fatal(err)
	}
	d, _ := runTM(t, f, DirDown, DefaultConfig())
	if d != DecisionChange {
		t.Fatalf("decision = %v, want change", d)
	}
	place := f.Placement()
	lightDyn := 0
	for op := 5; op <= 12; op++ {
		if place[op] {
			lightDyn++
		}
	}
	if lightDyn != 0 {
		t.Fatalf("light ops still dynamic after DOWN run: %v", place)
	}
	for op := 1; op <= 4; op++ {
		if !place[op] {
			t.Fatalf("DOWN run removed a profitable heavy queue: %v", place)
		}
	}
}

func TestTMRunNoCandidates(t *testing.T) {
	f := newFakeEngine([]float64{0.001, 0.01}, 0.001, 8, 8)
	// DOWN with nothing dynamic has no candidates.
	rng := rand.New(rand.NewSource(1))
	run := newTMRun(f, DirDown, DefaultConfig(), rng)
	thr, _ := f.Observe()
	d, err := run.Step(thr)
	if err != nil {
		t.Fatal(err)
	}
	if d != DecisionStay {
		t.Fatalf("decision = %v, want stay", d)
	}
}

func TestTMRunNeverRevisitsPlacement(t *testing.T) {
	// Stability (SASO): the search must not oscillate between placements.
	f := heavyLightEngine()
	if err := f.SetThreadCount(8); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	run := newTMRun(f, DirUp, DefaultConfig(), rng)
	key := func() string {
		b := make([]byte, f.NumOperators())
		for i, d := range f.Placement() {
			if d {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}
	// A placement may legitimately recur a bounded number of times (trial,
	// group settle, next group's baseline). True oscillation is an
	// A-B-A-B alternation, which the visited-set search makes impossible.
	var hist []string
	for steps := 0; steps < 500; steps++ {
		thr, _ := f.Observe()
		d, err := run.Step(thr)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, key())
		if n := len(hist); n >= 4 {
			a, b := hist[n-1], hist[n-2]
			if a != b && hist[n-3] == a && hist[n-4] == b {
				t.Fatalf("oscillation detected: %v", hist[n-4:])
			}
		}
		if d != DecisionContinue {
			return
		}
	}
	t.Fatal("run did not terminate")
}

func TestTMRunTerminatesQuickly(t *testing.T) {
	// Settling time (SASO): for a 1-group search over N ops, the number of
	// observations must be O(log N), not O(N).
	costs := []float64{0.001}
	for i := 0; i < 256; i++ {
		costs = append(costs, 0.010)
	}
	f := newFakeEngine(costs, 0.001, 1024, 512)
	if err := f.SetThreadCount(64); err != nil {
		t.Fatal(err)
	}
	_, steps := runTM(t, f, DirUp, DefaultConfig())
	if steps > 2+10*2 {
		t.Fatalf("search over 256 ops took %d observations, want O(log n)", steps)
	}
}

func TestTMRunApplyErrorPropagates(t *testing.T) {
	f := heavyLightEngine()
	rng := rand.New(rand.NewSource(1))
	run := newTMRun(f, DirUp, DefaultConfig(), rng)
	f.failApply = true
	thr, _ := f.Observe()
	if _, err := run.Step(thr); err == nil {
		t.Fatal("apply failure did not propagate")
	}
}

func TestPlacementsEqual(t *testing.T) {
	if !placementsEqual([]bool{true, false}, []bool{true, false}) {
		t.Fatal("equal placements reported unequal")
	}
	if placementsEqual([]bool{true}, []bool{false}) {
		t.Fatal("unequal placements reported equal")
	}
	if placementsEqual([]bool{true}, []bool{true, false}) {
		t.Fatal("different lengths reported equal")
	}
}
