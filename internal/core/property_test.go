package core

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// landscapeEngine is a fake engine whose throughput is an arbitrary
// function of (placement, threads), for property-testing the controllers on
// randomized performance landscapes.
type landscapeEngine struct {
	n       int
	sources []bool
	maxT    int

	placement []bool
	threads   int
	clock     time.Duration

	metric []float64
	thr    func(dynCount, threads int) float64
}

func newLandscapeEngine(n, maxT int, thr func(dynCount, threads int) float64) *landscapeEngine {
	e := &landscapeEngine{
		n:         n,
		sources:   make([]bool, n),
		maxT:      maxT,
		placement: make([]bool, n),
		threads:   1,
		metric:    make([]float64, n),
		thr:       thr,
	}
	e.sources[0] = true
	for i := range e.metric {
		e.metric[i] = 100 // one cost class: a single profiling group
	}
	return e
}

func (e *landscapeEngine) NumOperators() int { return e.n }

func (e *landscapeEngine) Placeable() []bool {
	out := make([]bool, e.n)
	for i := range out {
		out[i] = !e.sources[i]
	}
	return out
}

func (e *landscapeEngine) CostMetric() []float64 { return append([]float64(nil), e.metric...) }

func (e *landscapeEngine) Placement() []bool { return append([]bool(nil), e.placement...) }

func (e *landscapeEngine) ApplyPlacement(p []bool) error {
	copy(e.placement, p)
	return nil
}

func (e *landscapeEngine) ThreadCount() int { return e.threads }

func (e *landscapeEngine) SetThreadCount(n int) error {
	e.threads = n
	return nil
}

func (e *landscapeEngine) MaxThreads() int { return e.maxT }

func (e *landscapeEngine) dynCount() int {
	c := 0
	for i, d := range e.placement {
		if d && !e.sources[i] {
			c++
		}
	}
	return c
}

func (e *landscapeEngine) Observe() (float64, error) {
	e.clock += 5 * time.Second
	return e.thr(e.dynCount(), e.threads), nil
}

func (e *landscapeEngine) Now() time.Duration { return e.clock }

var _ Engine = (*landscapeEngine)(nil)

// TestTCRunPropertyUnimodal: on random unimodal thread-count landscapes the
// controller must terminate quickly and land within a factor of the
// optimum.
func TestTCRunPropertyUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		maxT := 8 + rng.Intn(250)
		peak := 1 + rng.Intn(maxT)
		width := 1 + rng.Float64()*4
		thr := func(_, threads int) float64 {
			// Log-distance unimodal bump around the peak.
			d := math.Log(float64(threads)/float64(peak)) / width
			return 1000 * math.Exp(-d*d)
		}
		e := newLandscapeEngine(4, maxT, thr)
		cfg := DefaultConfig()
		run := newTCRun(e, cfg)
		steps := 0
		for ; steps < 100; steps++ {
			perf, _ := e.Observe()
			_, done, err := run.Step(perf)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		if steps >= 100 {
			t.Fatalf("trial %d (peak %d, max %d): no termination", trial, peak, maxT)
		}
		got := thr(0, e.ThreadCount())
		best := thr(0, peak)
		if got < 0.5*best {
			t.Fatalf("trial %d: settled at %d threads (%.0f), peak %d (%.0f)",
				trial, e.ThreadCount(), got, peak, best)
		}
	}
}

// TestTMRunPropertyNeverWorseThanStart: whatever the landscape, a
// threading-model run must never leave the system significantly worse than
// it started (trials are reverted unless they win by SENS).
func TestTMRunPropertyNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 6 + rng.Intn(60)
		// Arbitrary (non-unimodal) landscape over dynamic counts.
		coeff := make([]float64, n+1)
		for i := range coeff {
			coeff[i] = 100 + 900*rng.Float64()
		}
		thr := func(dynCount, _ int) float64 { return coeff[dynCount] }
		e := newLandscapeEngine(n, 16, thr)
		start, _ := e.Observe()

		cfg := DefaultConfig()
		cfg.Seed = int64(trial)
		run := newTMRun(e, DirUp, cfg, rand.New(rand.NewSource(int64(trial))))
		steps := 0
		for ; steps < 200; steps++ {
			perf, _ := e.Observe()
			d, err := run.Step(perf)
			if err != nil {
				t.Fatal(err)
			}
			if d != DecisionContinue {
				break
			}
		}
		if steps >= 200 {
			t.Fatalf("trial %d: run did not terminate", trial)
		}
		final := thr(e.dynCount(), 0)
		if final < start*(1-cfg.Sens) {
			t.Fatalf("trial %d: run left throughput at %.0f, started at %.0f", trial, final, start)
		}
	}
}

// TestCoordinatorPropertyConverges: on random two-dimensional landscapes
// where queues unlock thread scaling, the full coordinator must settle and
// end at or above its starting throughput.
func TestCoordinatorPropertyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		maxT := 16 + rng.Intn(128)
		optQueues := 1 + rng.Intn(n-1)
		base := 100 + 900*rng.Float64()
		thr := func(dynCount, threads int) float64 {
			// Queues help up to optQueues then hurt; threads help up to
			// a queue-dependent ceiling.
			qf := 1 + 3*math.Min(float64(dynCount), float64(optQueues))/float64(optQueues)
			if dynCount > optQueues {
				qf /= 1 + 0.1*float64(dynCount-optQueues)
			}
			ceil := 1 + float64(dynCount)
			tf := math.Min(float64(threads), ceil) / ceil
			return base * qf * (0.25 + 0.75*tf)
		}
		e := newLandscapeEngine(n, maxT, thr)
		cfg := DefaultConfig()
		cfg.Seed = int64(trial + 1)
		coord, err := NewCoordinator(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := thr(0, cfg.MinThreads)
		_, ok, err := coord.RunUntilSettled(3000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d (n=%d, maxT=%d, opt=%d): did not settle", trial, n, maxT, optQueues)
		}
		final := thr(e.dynCount(), e.ThreadCount())
		if final < start {
			t.Fatalf("trial %d: settled at %.0f, below start %.0f (dyn=%d thr=%d)",
				trial, final, start, e.dynCount(), e.ThreadCount())
		}
	}
}
