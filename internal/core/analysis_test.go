package core

import (
	"testing"
	"time"
)

func ev(t time.Duration, thr float64, threads, queues int, phase Phase) TraceEvent {
	return TraceEvent{Time: t, Throughput: thr, Threads: threads, Queues: queues, Phase: phase}
}

func TestAnalyzeTraceEmpty(t *testing.T) {
	a := AnalyzeTrace(nil)
	if a.Observations != 0 || a.Accuracy() != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestAnalyzeTraceBasics(t *testing.T) {
	tr := []TraceEvent{
		ev(5*time.Second, 100, 2, 0, PhaseInitTM),
		ev(10*time.Second, 200, 2, 4, PhaseInitTM),
		ev(15*time.Second, 400, 4, 4, PhaseTC),
		ev(20*time.Second, 800, 8, 4, PhaseTC),
		ev(25*time.Second, 750, 4, 4, PhaseTC),
		ev(30*time.Second, 760, 4, 4, PhaseSettled),
	}
	a := AnalyzeTrace(tr)
	if a.Observations != 6 {
		t.Fatalf("observations = %d", a.Observations)
	}
	if a.SettleTime != 30*time.Second {
		t.Fatalf("settle time = %v", a.SettleTime)
	}
	if a.ConfigChanges != 4 {
		t.Fatalf("config changes = %d, want 4", a.ConfigChanges)
	}
	if a.Oscillations != 0 {
		t.Fatalf("oscillations = %d", a.Oscillations)
	}
	if a.PeakThroughput != 800 || a.FinalThroughput != 760 {
		t.Fatalf("peak/final = %v/%v", a.PeakThroughput, a.FinalThroughput)
	}
	if got := a.Accuracy(); got < 0.94 || got > 0.96 {
		t.Fatalf("accuracy = %v, want 0.95", got)
	}
	if a.MaxThreads != 8 || a.FinalThreads != 4 || a.Overshoot() != 4 {
		t.Fatalf("thread stats: max %d final %d overshoot %d", a.MaxThreads, a.FinalThreads, a.Overshoot())
	}
	if a.PostSettleChanges != 0 {
		t.Fatalf("post-settle changes = %d", a.PostSettleChanges)
	}
}

func TestAnalyzeTraceDetectsOscillation(t *testing.T) {
	tr := []TraceEvent{
		ev(5*time.Second, 100, 2, 0, PhaseTC),
		ev(10*time.Second, 100, 4, 0, PhaseTC),
		ev(15*time.Second, 100, 2, 0, PhaseTC),
		ev(20*time.Second, 100, 4, 0, PhaseTC),
		ev(25*time.Second, 100, 2, 0, PhaseTC),
	}
	a := AnalyzeTrace(tr)
	if a.Oscillations < 2 {
		t.Fatalf("oscillations = %d, want >= 2 for A-B-A-B-A", a.Oscillations)
	}
}

func TestAnalyzeTracePostSettleChanges(t *testing.T) {
	tr := []TraceEvent{
		ev(5*time.Second, 100, 2, 0, PhaseSettled),
		ev(10*time.Second, 100, 2, 0, PhaseSettled),
		ev(15*time.Second, 100, 4, 0, PhaseSettled),
	}
	a := AnalyzeTrace(tr)
	if a.PostSettleChanges != 1 {
		t.Fatalf("post-settle changes = %d, want 1", a.PostSettleChanges)
	}
}

// TestCoordinatorTraceSASO ties the analyzer to a real adaptation run: the
// coordinator's trace must show zero oscillations and a near-peak converged
// throughput.
func TestCoordinatorTraceSASO(t *testing.T) {
	f := heavyLightEngine()
	c := settleCoordinator(t, f, DefaultConfig())
	a := AnalyzeTrace(c.Trace())
	if a.Oscillations != 0 {
		t.Fatalf("real adaptation trace contains %d oscillations", a.Oscillations)
	}
	if a.SettleTime == 0 {
		t.Fatal("settle time not detected in trace")
	}
	if a.Accuracy() < 0.8 {
		t.Fatalf("converged throughput is %.0f%% of peak", 100*a.Accuracy())
	}
	if a.FinalThreads > a.MaxThreads {
		t.Fatal("final threads exceed explored maximum")
	}
}
