package core

import (
	"math"
	"math/rand"
	"testing"
)

// runTMOnLandscape drives one threading-model run over a count->throughput
// landscape with a single cost group of n candidate operators, returning
// the final dynamic count, the decision, and the observations used.
func runTMOnLandscape(t *testing.T, n int, f func(count int) float64) (int, Decision, int) {
	t.Helper()
	e := newLandscapeEngine(n+1, 16, func(dynCount, _ int) float64 { return f(dynCount) })
	rng := rand.New(rand.NewSource(1))
	run := newTMRun(e, DirUp, DefaultConfig(), rng)
	for steps := 1; steps <= 300; steps++ {
		perf, _ := e.Observe()
		d, err := run.Step(perf)
		if err != nil {
			t.Fatal(err)
		}
		if d != DecisionContinue {
			return e.dynCount(), d, steps
		}
	}
	t.Fatal("run did not terminate")
	return 0, 0, 0
}

// TestRuleR1R2MonotoneIncreasing: with throughput strictly increasing in
// the dynamic count, the rules keep adding operators until the whole group
// is dynamic (Fig. 3a/3b; Fig. 4 line 4-8).
func TestRuleR1R2MonotoneIncreasing(t *testing.T) {
	const n = 32
	final, d, _ := runTMOnLandscape(t, n, func(c int) float64 {
		return 100 * math.Pow(1.2, float64(c))
	})
	if final != n {
		t.Fatalf("monotone-increasing landscape settled at %d/%d dynamic", final, n)
	}
	if d != DecisionChange {
		t.Fatalf("decision = %v, want change", d)
	}
}

// TestRuleR3R4MonotoneDecreasing: with throughput strictly decreasing in
// the dynamic count, the rules retreat to zero and report STAY (Fig. 3c/3d;
// Fig. 4 lines 9-12).
func TestRuleR3R4MonotoneDecreasing(t *testing.T) {
	const n = 32
	final, d, _ := runTMOnLandscape(t, n, func(c int) float64 {
		return 1000 * math.Pow(0.8, float64(c))
	})
	if final != 0 {
		t.Fatalf("monotone-decreasing landscape settled at %d dynamic, want 0", final)
	}
	if d != DecisionStay {
		t.Fatalf("decision = %v, want stay", d)
	}
}

// TestRuleR5PeakBracketing: with a unimodal landscape whose full-group
// configuration is worse than the baseline, the search brackets the
// interior peak (Fig. 3e) within the resolution of step-halving.
func TestRuleR5PeakBracketing(t *testing.T) {
	const n = 64
	for _, peak := range []int{8, 16, 21} {
		final, d, _ := runTMOnLandscape(t, n, func(c int) float64 {
			dist := float64(c - peak)
			return 1000 * math.Exp(-dist*dist/200)
		})
		got := f64(final)
		want := f64(peak)
		if math.Abs(got-want) > f64(n)/4 {
			t.Fatalf("peak %d: settled at %d, outside bracketing tolerance", peak, final)
		}
		if d != DecisionChange {
			t.Fatalf("peak %d: decision = %v, want change", peak, d)
		}
	}
}

// TestRuleGroupGranularityAcceptsWholeGroup: when the whole group beats the
// baseline, the group-level decision accepts it without fine-tuning inside
// (Fig. 4 line 4: full group improved -> move on). This is observation
// O2's granularity trade-off, deliberate in the paper.
func TestRuleGroupGranularityAcceptsWholeGroup(t *testing.T) {
	const n, peak = 64, 40
	final, d, steps := runTMOnLandscape(t, n, func(c int) float64 {
		dist := float64(c - peak)
		return 1000 * math.Exp(-dist*dist/200)
	})
	if final != n {
		t.Fatalf("full-group improvement settled at %d, want the whole group (%d)", final, n)
	}
	if d != DecisionChange {
		t.Fatalf("decision = %v, want change", d)
	}
	if steps > 4 {
		t.Fatalf("group-level acceptance took %d observations", steps)
	}
}

func f64(i int) float64 { return float64(i) }

// TestRuleSettlingLogarithmic: observations scale logarithmically with the
// group size (observation O2's purpose), not linearly.
func TestRuleSettlingLogarithmic(t *testing.T) {
	peakFrac := 0.6
	for _, n := range []int{32, 256, 1024} {
		peak := int(peakFrac * float64(n))
		_, _, steps := runTMOnLandscape(t, n, func(c int) float64 {
			dist := float64(c-peak) / float64(n)
			return 1000 * math.Exp(-dist*dist*8)
		})
		bound := 4*int(math.Log2(float64(n))) + 8
		if steps > bound {
			t.Fatalf("n=%d: search used %d observations, want <= %d (O(log n))", n, steps, bound)
		}
	}
}

// TestRuleFlatLandscapeStays: a flat landscape (all differences inside
// SENS) must keep the incumbent all-manual placement (R5's stability role).
func TestRuleFlatLandscapeStays(t *testing.T) {
	final, d, steps := runTMOnLandscape(t, 32, func(c int) float64 {
		return 1000 + float64(c%3) // +-0.3%: under SENS
	})
	if final != 0 {
		t.Fatalf("flat landscape moved the placement to %d dynamic", final)
	}
	if d != DecisionStay {
		t.Fatalf("decision = %v, want stay", d)
	}
	if steps > 6 {
		t.Fatalf("flat landscape took %d observations to reject", steps)
	}
}

// TestRuleGroupOrderHeaviestFirst: with two cost groups, the heavier group
// is explored (and adopted) before the lighter one (observation O1).
func TestRuleGroupOrderHeaviestFirst(t *testing.T) {
	// 4 heavy ops (metric 10000), 8 light ops (metric 1). Dynamic heavy
	// ops help a lot; light ops hurt.
	e := newLandscapeEngine(13, 16, nil)
	for i := 1; i <= 4; i++ {
		e.metric[i] = 10000
	}
	for i := 5; i <= 12; i++ {
		e.metric[i] = 1
	}
	heavySet := map[int]bool{1: true, 2: true, 3: true, 4: true}
	e.thr = func(_, _ int) float64 {
		h, l := 0, 0
		for i, d := range e.placement {
			if !d || e.sources[i] {
				continue
			}
			if heavySet[i] {
				h++
			} else {
				l++
			}
		}
		return 100 * math.Pow(1.5, float64(h)) * math.Pow(0.8, float64(l))
	}
	rng := rand.New(rand.NewSource(3))
	run := newTMRun(e, DirUp, DefaultConfig(), rng)
	var firstDynamic []int
	for steps := 0; steps < 100; steps++ {
		perf, _ := e.Observe()
		d, err := run.Step(perf)
		if err != nil {
			t.Fatal(err)
		}
		if firstDynamic == nil && e.dynCount() > 0 {
			for i, dyn := range e.placement {
				if dyn {
					firstDynamic = append(firstDynamic, i)
				}
			}
		}
		if d != DecisionContinue {
			break
		}
	}
	if firstDynamic == nil {
		t.Fatal("nothing ever became dynamic")
	}
	for _, op := range firstDynamic {
		if !heavySet[op] {
			t.Fatalf("first trial touched light operator %d; exploration must start with the heaviest group", op)
		}
	}
	// Final placement: all heavy dynamic, no light dynamic.
	for op := 1; op <= 4; op++ {
		if !e.placement[op] {
			t.Fatalf("heavy op %d not dynamic at the end", op)
		}
	}
	for op := 5; op <= 12; op++ {
		if e.placement[op] {
			t.Fatalf("light op %d dynamic at the end", op)
		}
	}
}
