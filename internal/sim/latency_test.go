package sim

import (
	"testing"
	"time"
)

func TestEstimateLatencyPositiveFinite(t *testing.T) {
	g := pipeline(t, 50, 500)
	e := newEngine(t, g, Xeon176(), WithPayload(1024))
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		lat := e.EstimateLatency(frac)
		if lat <= 0 || lat > time.Minute {
			t.Fatalf("latency at %.0f%% load = %v", 100*frac, lat)
		}
	}
	// Degenerate fractions are clamped, not errors.
	if e.EstimateLatency(0) <= 0 || e.EstimateLatency(5) <= 0 {
		t.Fatal("clamped fractions produced non-positive latency")
	}
}

func TestEstimateLatencyGrowsWithLoad(t *testing.T) {
	g := pipeline(t, 50, 500)
	e := newEngine(t, g, Xeon176().WithCores(32), WithPayload(1024))
	if err := e.ApplyPlacement(placeEvery(g, 5)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(16); err != nil {
		t.Fatal(err)
	}
	low := e.EstimateLatency(0.2)
	high := e.EstimateLatency(0.95)
	if high <= low {
		t.Fatalf("latency did not grow with load: %v at 20%%, %v at 95%%", low, high)
	}
}

func TestEstimateLatencyManualHasNoQueueingDelay(t *testing.T) {
	// At low load, the manual pipeline's latency is close to the pure
	// service time; a queued placement adds crossing costs and waiting.
	g := pipeline(t, 50, 500)
	e := newEngine(t, g, Xeon176(), WithPayload(1024))
	manual := e.EstimateLatency(0.1)
	serviceOnly := time.Duration(49 * 500 * 1e-9 * float64(time.Second)) // 49 work ops
	if manual < serviceOnly || manual > 3*serviceOnly {
		t.Fatalf("manual low-load latency %v not near service floor %v", manual, serviceOnly)
	}
	if err := e.ApplyPlacement(placeEvery(g, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(32); err != nil {
		t.Fatal(err)
	}
	queued := e.EstimateLatency(0.1)
	if queued <= manual {
		t.Fatalf("queued placement latency %v not above manual %v at equal low load", queued, manual)
	}
}

func TestEstimateLatencyDeterministic(t *testing.T) {
	g := pipeline(t, 30, 200)
	e := newEngine(t, g, Power8(), WithPayload(256))
	if err := e.ApplyPlacement(placeEvery(g, 3)); err != nil {
		t.Fatal(err)
	}
	a := e.EstimateLatency(0.7)
	b := e.EstimateLatency(0.7)
	if a != b {
		t.Fatalf("latency estimate not deterministic: %v vs %v", a, b)
	}
}
