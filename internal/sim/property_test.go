package sim

import (
	"math/rand"
	"testing"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// randomPlacement marks each non-source node dynamic with probability p.
func randomPlacement(g *graph.Graph, rng *rand.Rand, p float64) []bool {
	out := make([]bool, g.NumNodes())
	for i := range out {
		if !g.Node(graph.NodeID(i)).Source && rng.Float64() < p {
			out[i] = true
		}
	}
	return out
}

// TestModelMonotoneInCores: for any placement and thread count, more cores
// never reduce modeled throughput.
func TestModelMonotoneInCores(t *testing.T) {
	g := pipeline(t, 60, 500)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		place := randomPlacement(g, rng, rng.Float64())
		threads := 1 + rng.Intn(64)
		prev := 0.0
		for _, cores := range []int{2, 4, 8, 16, 32, 64, 128} {
			e := newEngine(t, g, Xeon176().WithCores(cores), WithPayload(512), WithMaxThreads(256))
			if err := e.ApplyPlacement(place); err != nil {
				t.Fatal(err)
			}
			if err := e.SetThreadCount(threads); err != nil {
				t.Fatal(err)
			}
			thr := e.Throughput()
			if thr < prev*(1-1e-9) {
				t.Fatalf("trial %d: throughput fell from %v to %v when cores rose to %d",
					trial, prev, thr, cores)
			}
			prev = thr
		}
	}
}

// TestModelMonotoneInPayload: for any configuration with queues, a larger
// payload never increases modeled throughput (copies only get costlier).
func TestModelMonotoneInPayload(t *testing.T) {
	g := pipeline(t, 60, 500)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		place := randomPlacement(g, rng, 0.2+0.6*rng.Float64())
		threads := 1 + rng.Intn(64)
		prev := 0.0
		for i, payload := range []int{16384, 4096, 1024, 256, 64, 16} {
			e := newEngine(t, g, Xeon176(), WithPayload(payload))
			if err := e.ApplyPlacement(place); err != nil {
				t.Fatal(err)
			}
			if err := e.SetThreadCount(threads); err != nil {
				t.Fatal(err)
			}
			thr := e.Throughput()
			if i > 0 && thr < prev*(1-1e-9) {
				t.Fatalf("trial %d: throughput fell from %v to %v when payload shrank to %d",
					trial, prev, thr, payload)
			}
			prev = thr
		}
	}
}

// TestModelManualIndependentOfThreads: with no queues, scheduler threads
// are idle, so the thread count cannot affect throughput.
func TestModelManualIndependentOfThreads(t *testing.T) {
	g := pipeline(t, 40, 200)
	e := newEngine(t, g, Xeon176())
	base := e.Throughput()
	for _, threads := range []int{2, 8, 64, 200} {
		if err := e.SetThreadCount(threads); err != nil {
			t.Fatal(err)
		}
		if got := e.Throughput(); got != base {
			t.Fatalf("manual throughput changed with %d idle threads: %v vs %v", threads, got, base)
		}
	}
}

// TestModelThroughputPositiveAndFinite: any valid configuration yields a
// positive finite throughput.
func TestModelThroughputPositiveAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(80)
		g := pipeline(t, n, float64(1+rng.Intn(10000)))
		e := newEngine(t, g, Xeon176().WithCores(1+rng.Intn(200)), WithPayload(rng.Intn(1<<14)))
		place := randomPlacement(g, rng, rng.Float64())
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		if err := e.SetThreadCount(1 + rng.Intn(e.MaxThreads())); err != nil {
			t.Fatal(err)
		}
		thr := e.Throughput()
		if !(thr > 0) || thr > 1e12 {
			t.Fatalf("trial %d: implausible throughput %v", trial, thr)
		}
	}
}

// TestModelZeroCostGraphStillBounded: even a graph of free operators is
// bounded by source overhead.
func TestModelZeroCostGraphStillBounded(t *testing.T) {
	g := graph.New()
	src := g.AddSource(nil, spl.NewCostVar(0))
	a := g.AddOperator(nil, spl.NewCostVar(0))
	if err := g.Connect(src, 0, a, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Xeon176())
	thr := e.Throughput()
	if !(thr > 0) {
		t.Fatalf("zero-cost throughput %v", thr)
	}
	if thr > 1/Xeon176().SourceOverhead*1.01 {
		t.Fatalf("throughput %v exceeds the source-overhead bound", thr)
	}
}
