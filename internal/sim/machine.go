// Package sim implements the simulated machine: a deterministic analytic
// performance model of a processing element that implements core.Engine.
// It reproduces the cost structure the paper identifies for the two
// threading models — tuple copying at queue crossings, enqueue/dequeue
// synchronization, the per-dispatch cost of scanning a growing list of
// scheduler queues, lock contention on shared operators, and core limits —
// and advances a virtual clock, so thousand-second adaptation experiments
// on hundred-core machines replay in microseconds on any host.
package sim

// Machine describes the modeled hardware and runtime cost constants. All
// costs are in seconds unless noted.
type Machine struct {
	// Name labels the machine in experiment output.
	Name string
	// Cores is the number of logical cores.
	Cores int
	// SecPerFLOP converts operator FLOP costs to service time.
	SecPerFLOP float64
	// CopyPerByte is the cost of copying one tuple byte into a scheduler
	// queue (the paper's "copy overhead": SPL tuples are statically
	// allocated, so queue crossings copy).
	CopyPerByte float64
	// EnqueueCost and DequeueCost are the synchronization costs of one
	// queue crossing, paid by producer and consumer respectively.
	EnqueueCost float64
	DequeueCost float64
	// ScanPerQueue models the work-finding overhead: each dispatch scans
	// the scheduler-queue list, so dequeue cost grows with the number of
	// queues ("an increasing list of scheduler queues means that each
	// thread has to spend longer time in finding work").
	ScanPerQueue float64
	// ContentionCost is the extra service time a lock-contended operator
	// pays per additional thread touching it (the Fig. 10 sink effect).
	ContentionCost float64
	// SourceOverhead is the fixed per-tuple cost of producing a tuple at a
	// source.
	SourceOverhead float64
	// QueueSerialCost bounds a single queue's crossing rate: enqueue and
	// dequeue serialize on the ring, capping one queue at
	// 1/QueueSerialCost tuples per second.
	QueueSerialCost float64
	// MemBandwidth is the machine's copy bandwidth in bytes/second; the
	// aggregate tuple copying of all queue crossings cannot exceed it.
	// This is what makes large payloads favor the manual model.
	MemBandwidth float64
	// OversubAlpha shapes the penalty for running more scheduler threads
	// than available cores: pool capacity is scaled by
	// (cores/threads)^OversubAlpha when threads exceed cores.
	OversubAlpha float64
	// NoiseAmp is the relative amplitude of the deterministic measurement
	// noise applied to observations, so controllers must genuinely
	// discriminate trends from noise.
	NoiseAmp float64
}

// Xeon176 models the paper's Xeon system with 176 logical cores.
func Xeon176() Machine {
	return Machine{
		Name:            "xeon-176",
		Cores:           176,
		SecPerFLOP:      1e-9,
		CopyPerByte:     0.1e-9,
		EnqueueCost:     60e-9,
		DequeueCost:     60e-9,
		ScanPerQueue:    1e-9,
		ContentionCost:  40e-9,
		SourceOverhead:  50e-9,
		QueueSerialCost: 25e-9,
		MemBandwidth:    20e9,
		OversubAlpha:    0.15,
		NoiseAmp:        0.01,
	}
}

// Power8 models the paper's Power8 system: two 3 GHz 12-core 8-way SMT
// processors with one core disabled, yielding 184 logical cores. Relative
// to the Xeon it has slightly slower per-thread compute and higher copy
// bandwidth, which only perturbs the absolute numbers; the paper observes
// the same trends on both.
func Power8() Machine {
	m := Xeon176()
	m.Name = "power8-184"
	m.Cores = 184
	m.SecPerFLOP = 1.3e-9
	m.MemBandwidth = 28e9
	m.ContentionCost = 55e-9
	return m
}

// WithCores returns a copy of m restricted to the given core count, used
// for the paper's experiments that vary the available resources from 16 to
// 88 cores.
func (m Machine) WithCores(cores int) Machine {
	m.Cores = cores
	return m
}
