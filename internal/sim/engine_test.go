package sim

import (
	"math"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

var _ core.Engine = (*Engine)(nil)

// pipeline builds an n-operator chain (source + n-1 workers) with the given
// uniform FLOP cost.
func pipeline(t testing.TB, n int, flops float64) *graph.Graph {
	t.Helper()
	g := graph.New()
	prev := g.AddSource(nil, spl.NewCostVar(0))
	for i := 1; i < n; i++ {
		id := g.AddOperator(nil, spl.NewCostVar(flops))
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

// placeEvery returns a placement with a queue in front of every k-th
// non-source operator.
func placeEvery(g *graph.Graph, k int) []bool {
	p := make([]bool, g.NumNodes())
	if k <= 0 {
		return p
	}
	j := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(graph.NodeID(i)).Source {
			continue
		}
		if j%k == 0 {
			p[i] = true
		}
		j++
	}
	return p
}

func newEngine(t testing.TB, g *graph.Graph, m Machine, opts ...Option) *Engine {
	t.Helper()
	e, err := New(g, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	g := graph.New()
	g.AddSource(nil, nil)
	if _, err := New(g, Xeon176()); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, Machine{Cores: 0}); err == nil {
		t.Fatal("zero-core machine accepted")
	}
}

func TestManualPipelineMatchesSerialModel(t *testing.T) {
	// 100 ops x 100 FLOPs = 10us serial + 50ns source overhead.
	g := pipeline(t, 101, 100)
	e := newEngine(t, g, Xeon176())
	got := e.Throughput()
	want := 1 / (100*100e-9 + 50e-9)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("manual throughput = %v, want %v", got, want)
	}
}

func TestDynamicBeatsManualWithManyCores(t *testing.T) {
	g := pipeline(t, 101, 100)
	e := newEngine(t, g, Xeon176(), WithPayload(1))
	manual := e.Throughput()
	if err := e.ApplyPlacement(placeEvery(g, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(87); err != nil {
		t.Fatal(err)
	}
	dynamic := e.Throughput()
	if dynamic < 5*manual {
		t.Fatalf("full dynamic (%v) not much faster than manual (%v) with tiny payload", dynamic, manual)
	}
}

// TestInteriorOptimumFig1Shape verifies the central claim behind Fig. 1:
// with a 1 KB payload the best fraction of dynamic operators is strictly
// between 0 and 100%.
func TestInteriorOptimumFig1Shape(t *testing.T) {
	g := pipeline(t, 101, 100)
	e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(1024))
	if err := e.SetThreadCount(87); err != nil {
		t.Fatal(err)
	}
	bestK, bestThr := 0, 0.0
	var manualThr, fullThr float64
	for _, k := range []int{0, 1, 2, 3, 5, 8, 12, 20, 33, 50, 100} {
		var p []bool
		if k == 0 {
			p = make([]bool, g.NumNodes())
		} else {
			p = placeEvery(g, 100/k) // roughly k queues
		}
		if err := e.ApplyPlacement(p); err != nil {
			t.Fatal(err)
		}
		thr := e.Throughput()
		if k == 0 {
			manualThr = thr
		}
		if k == 100 {
			fullThr = thr
		}
		if thr > bestThr {
			bestK, bestThr = k, thr
		}
	}
	if bestK == 0 || bestK == 100 {
		t.Fatalf("optimum at %d%% dynamic; want interior (manual %v, full %v, best %v)",
			bestK, manualThr, fullThr, bestThr)
	}
	if bestThr < 2*fullThr {
		t.Fatalf("interior optimum %v not clearly better than full dynamic %v", bestThr, fullThr)
	}
}

// TestLargerPayloadPrefersFewerQueues checks the Fig. 9 trend: as payload
// grows, the optimal number of queues shrinks.
func TestLargerPayloadPrefersFewerQueues(t *testing.T) {
	g := pipeline(t, 101, 100)
	optQueues := func(payload int) int {
		e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(payload))
		if err := e.SetThreadCount(87); err != nil {
			t.Fatal(err)
		}
		best, bestQ := 0.0, 0
		for q := 0; q <= 100; q += 2 {
			var p []bool
			if q == 0 {
				p = make([]bool, g.NumNodes())
			} else {
				p = placeEvery(g, 100/q)
			}
			if err := e.ApplyPlacement(p); err != nil {
				t.Fatal(err)
			}
			if thr := e.Throughput(); thr > best {
				best, bestQ = thr, e.Queues()
			}
		}
		return bestQ
	}
	small := optQueues(128)
	large := optQueues(16384)
	if large >= small {
		t.Fatalf("optimal queues at 16KB (%d) not below optimal at 128B (%d)", large, small)
	}
}

// TestContendedSinkMakesDynamicLose reproduces the Fig. 10 effect: on a
// data-parallel graph whose sink serializes on a lock, full dynamic with
// many threads can be slower than manual threading.
func TestContendedSinkMakesDynamicLose(t *testing.T) {
	g := graph.New()
	src := g.AddSource(nil, spl.NewCostVar(0))
	split := g.AddOperator(nil, spl.NewCostVar(1))
	snk := g.AddOperator(nil, spl.NewCostVar(1))
	width := 50
	for i := 0; i < width; i++ {
		w := g.AddOperator(nil, spl.NewCostVar(100))
		if err := g.Connect(split, i, w, 0, 1.0/float64(width)); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(w, 0, snk, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, split, 0, 1); err != nil {
		t.Fatal(err)
	}
	g.SetContended(snk)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(128))
	manual := e.Throughput()
	all := make([]bool, g.NumNodes())
	for i := range all {
		all[i] = !g.Node(graph.NodeID(i)).Source
	}
	if err := e.ApplyPlacement(all); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(87); err != nil {
		t.Fatal(err)
	}
	dynamic := e.Throughput()
	if dynamic >= manual {
		t.Fatalf("contended sink: full dynamic (%v) should lose to manual (%v)", dynamic, manual)
	}
}

func TestThreadScalingAndOversubscription(t *testing.T) {
	g := pipeline(t, 101, 1000)
	e := newEngine(t, g, Xeon176().WithCores(16), WithPayload(64), WithMaxThreads(128))
	if err := e.ApplyPlacement(placeEvery(g, 2)); err != nil {
		t.Fatal(err)
	}
	var thrAt = func(n int) float64 {
		if err := e.SetThreadCount(n); err != nil {
			t.Fatal(err)
		}
		return e.Throughput()
	}
	t4, t15, t64 := thrAt(4), thrAt(15), thrAt(64)
	if t15 <= t4 {
		t.Fatalf("throughput did not scale with threads below the core count: %v -> %v", t4, t15)
	}
	if t64 >= t15 {
		t.Fatalf("oversubscription (64 threads on 16 cores) did not degrade: %v vs %v", t64, t15)
	}
}

func TestDedicatedPortsMode(t *testing.T) {
	g := pipeline(t, 21, 1000)
	e := newEngine(t, g, Xeon176(), WithDedicatedPorts())
	p := placeEvery(g, 5)
	if err := e.ApplyPlacement(p); err != nil {
		t.Fatal(err)
	}
	if got, want := e.ThreadCount(), e.Queues(); got != want {
		t.Fatalf("dedicated thread count = %d, want %d (one per queue)", got, want)
	}
	if err := e.SetThreadCount(3); err == nil {
		t.Fatal("dedicated engine allowed SetThreadCount")
	}
	if e.Throughput() <= 0 {
		t.Fatal("dedicated engine computed zero throughput")
	}
}

func TestObserveAdvancesVirtualClock(t *testing.T) {
	g := pipeline(t, 11, 100)
	e := newEngine(t, g, Xeon176(), WithPeriod(5*time.Second))
	if e.Now() != 0 {
		t.Fatal("clock not zero at start")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Observe(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Now() != 15*time.Second {
		t.Fatalf("clock = %v after 3 observations, want 15s", e.Now())
	}
}

func TestObserveNoiseBoundedAndDeterministic(t *testing.T) {
	g := pipeline(t, 11, 100)
	run := func() []float64 {
		e := newEngine(t, g, Xeon176(), WithSeed(7))
		base := e.Throughput()
		out := make([]float64, 20)
		for i := range out {
			thr, err := e.Observe()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(thr/base-1) > e.Machine().NoiseAmp+1e-12 {
				t.Fatalf("noise out of bounds: %v vs base %v", thr, base)
			}
			out[i] = thr
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCostMetricReflectsSkew(t *testing.T) {
	g := graph.New()
	src := g.AddSource(nil, spl.NewCostVar(0))
	heavy := g.AddOperator(nil, spl.NewCostVar(10000))
	light := g.AddOperator(nil, spl.NewCostVar(1))
	if err := g.Connect(src, 0, heavy, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(heavy, 0, light, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Xeon176())
	m := e.CostMetric()
	if m[heavy] <= m[light]*1000 {
		t.Fatalf("cost metric does not separate heavy (%v) from light (%v)", m[heavy], m[light])
	}
}

func TestSetThreadCountValidation(t *testing.T) {
	g := pipeline(t, 5, 1)
	e := newEngine(t, g, Xeon176(), WithMaxThreads(8))
	if err := e.SetThreadCount(0); err == nil {
		t.Fatal("accepted 0 threads")
	}
	if err := e.SetThreadCount(9); err == nil {
		t.Fatal("accepted threads above max")
	}
	if e.MaxThreads() != 8 {
		t.Fatalf("MaxThreads = %d, want 8", e.MaxThreads())
	}
}

func TestApplyPlacementValidation(t *testing.T) {
	g := pipeline(t, 5, 1)
	e := newEngine(t, g, Xeon176())
	if err := e.ApplyPlacement(make([]bool, 3)); err == nil {
		t.Fatal("accepted wrong-length placement")
	}
}

func TestPlaceableExcludesSources(t *testing.T) {
	g := pipeline(t, 5, 1)
	e := newEngine(t, g, Xeon176())
	p := e.Placeable()
	if p[0] {
		t.Fatal("source marked placeable")
	}
	for i := 1; i < len(p); i++ {
		if !p[i] {
			t.Fatalf("operator %d not placeable", i)
		}
	}
}

// TestCoordinatorOnSimFindsInteriorOptimum is the integration test tying
// the controllers to the simulated machine: multi-level elasticity must
// beat both pure manual and pure dynamic on the Fig. 1 configuration.
func TestCoordinatorOnSimFindsInteriorOptimum(t *testing.T) {
	g := pipeline(t, 101, 100)
	m := Xeon176().WithCores(88)

	manualEng := newEngine(t, g, m, WithPayload(1024))
	manual := manualEng.Throughput()

	dynEng := newEngine(t, g, m, WithPayload(1024))
	all := make([]bool, g.NumNodes())
	for i := range all {
		all[i] = !g.Node(graph.NodeID(i)).Source
	}
	if err := dynEng.ApplyPlacement(all); err != nil {
		t.Fatal(err)
	}
	dynThr, _, err := core.TuneThreadCount(dynEng, core.DefaultConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}

	mlEng := newEngine(t, g, m, WithPayload(1024))
	coord, err := core.NewCoordinator(mlEng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := coord.RunUntilSettled(3000); err != nil || !ok {
		t.Fatalf("coordinator did not settle: %v", err)
	}
	tr := coord.Trace()
	ml := tr[len(tr)-1].Throughput

	if ml < manual {
		t.Fatalf("multi-level (%v) below manual (%v)", ml, manual)
	}
	if ml < dynThr {
		t.Fatalf("multi-level (%v) below tuned dynamic (%v)", ml, dynThr)
	}
	if ml < 2*dynThr {
		t.Fatalf("multi-level (%v) should clearly beat tuned dynamic (%v) at 1KB payload", ml, dynThr)
	}
	q := mlEng.Queues()
	if q == 0 || q == 100 {
		t.Fatalf("converged queue count %d; want interior", q)
	}
}
