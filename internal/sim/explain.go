package sim

import (
	"fmt"
	"math"

	"streamelastic/internal/graph"
)

// Bottleneck identifies which constraint of the performance model limits a
// configuration's throughput.
type Bottleneck int

// Bottleneck kinds, mirroring the model constraints in Throughput.
const (
	BottleneckSource Bottleneck = iota + 1
	BottleneckPool
	BottleneckCores
	BottleneckQueueSerial
	BottleneckContention
	BottleneckMemBandwidth
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckSource:
		return "source-thread"
	case BottleneckPool:
		return "scheduler-pool"
	case BottleneckCores:
		return "cores"
	case BottleneckQueueSerial:
		return "queue-serialization"
	case BottleneckContention:
		return "lock-contention"
	case BottleneckMemBandwidth:
		return "memory-bandwidth"
	default:
		return "unknown"
	}
}

// Explanation describes the binding constraint of a configuration.
type Explanation struct {
	// Bottleneck is the binding constraint.
	Bottleneck Bottleneck
	// Throughput is the modeled sink throughput.
	Throughput float64
	// Detail names the specific resource (a node id for source or
	// contention bottlenecks).
	Detail string
}

// Explain recomputes the throughput model and reports which constraint
// binds. It mirrors Throughput exactly; the engine's configuration is not
// modified.
func (e *Engine) Explain() Explanation {
	if e.dirty {
		e.attr = graph.Attribute(e.g, e.placement)
		e.dirty = false
	}
	a := e.attr
	rates := e.g.Rates()
	costs := e.g.Costs()
	nHeads := len(a.Heads)
	nSrc := a.SourceHeads
	queues := nHeads - nSrc

	coreAvail := e.m.Cores - nSrc
	if coreAvail < 1 {
		coreAvail = 1
	}
	loads := make([]float64, nHeads)
	tupleBytes := float64(e.payloadBytes) + 64
	poolThreads := float64(minInt(e.threads, coreAvail))

	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		svc := costs[i] * e.m.SecPerFLOP
		if nd.Contended {
			svc += e.m.ContentionCost * e.contenders(a, i, poolThreads)
		}
		r := rates[i]
		for h, w := range a.Dist[i] {
			loads[h] += r * w * svc
		}
	}
	for h := 0; h < nSrc; h++ {
		loads[h] += e.m.SourceOverhead
	}
	copied := 0.0
	scan := e.m.ScanPerQueue * float64(queues)
	if e.dedicated {
		scan = 0
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		for _, eg := range nd.Out {
			to := e.g.Node(eg.To)
			if to.Source || !e.placement[eg.To] {
				continue
			}
			edgeRate := rates[i] * eg.RateFactor
			prod := e.m.CopyPerByte*tupleBytes + e.m.EnqueueCost
			for h, w := range a.Dist[i] {
				loads[h] += edgeRate * w * prod
			}
			loads[a.HeadIndex[eg.To]] += edgeRate * (e.m.DequeueCost + scan)
			copied += edgeRate * tupleBytes
		}
	}

	best := Explanation{Bottleneck: BottleneckCores, Throughput: math.Inf(1)}
	consider := func(x float64, b Bottleneck, detail string) {
		if x < best.Throughput {
			best = Explanation{Bottleneck: b, Throughput: x, Detail: detail}
		}
	}
	for h := 0; h < nSrc; h++ {
		if loads[h] > 0 {
			consider(1/loads[h], BottleneckSource, fmt.Sprintf("source node %d", a.Heads[h]))
		}
	}
	pooled := 0.0
	for h := nSrc; h < nHeads; h++ {
		pooled += loads[h]
	}
	if pooled > 0 {
		if e.dedicated {
			for h := nSrc; h < nHeads; h++ {
				if loads[h] > 0 {
					consider(1/loads[h], BottleneckPool, fmt.Sprintf("dedicated region at node %d", a.Heads[h]))
				}
			}
		} else {
			consider(e.poolCapacity(coreAvail)/pooled, BottleneckPool, "")
		}
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total > 0 {
		consider(float64(e.m.Cores)/total, BottleneckCores, "")
	}
	if e.m.QueueSerialCost > 0 && queues > 0 {
		perQueue := poolThreads / float64(queues)
		if e.dedicated || perQueue < 1 {
			perQueue = 1
		}
		serial := e.m.QueueSerialCost * perQueue
		for h := nSrc; h < nHeads; h++ {
			if r := rates[a.Heads[h]]; r > 0 {
				consider(1/(serial*r), BottleneckQueueSerial, fmt.Sprintf("queue at node %d", a.Heads[h]))
			}
		}
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		if !nd.Contended || rates[i] <= 0 {
			continue
		}
		svc := costs[i]*e.m.SecPerFLOP + e.m.ContentionCost*e.contenders(a, i, poolThreads)
		if svc > 0 {
			consider(1/(rates[i]*svc), BottleneckContention, fmt.Sprintf("contended node %d", i))
		}
	}
	if copied > 0 && e.m.MemBandwidth > 0 {
		consider(e.m.MemBandwidth/copied, BottleneckMemBandwidth, "")
	}

	sinkRate := 0.0
	for _, s := range e.g.Sinks() {
		sinkRate += rates[s]
	}
	best.Throughput *= sinkRate
	return best
}
