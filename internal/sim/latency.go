package sim

import (
	"math"
	"time"

	"streamelastic/internal/graph"
)

// EstimateLatency predicts the mean end-to-end tuple latency of the current
// configuration at the offered load `fraction` (0, 1] of the configuration's
// maximum throughput.
//
// The model treats every region as a queueing station: a tuple pays each
// station's service time plus an M/M/1-style waiting term
// w = s * rho/(1-rho), where rho is the utilization of the resource serving
// the station (the source thread for source regions, the scheduler pool for
// pooled regions). Latency is summed along the longest (critical)
// source-to-sink path. The estimate captures the structural trade-off the
// paper's motivation names: inline execution adds no queueing delay, while
// scheduler queues add waiting that grows with utilization.
func (e *Engine) EstimateLatency(fraction float64) time.Duration {
	if fraction <= 0 {
		fraction = 1e-6
	}
	if fraction > 0.999 {
		fraction = 0.999
	}
	if e.dirty {
		e.attr = graph.Attribute(e.g, e.placement)
		e.dirty = false
	}
	a := e.attr
	rates := e.g.Rates()
	costs := e.g.Costs()
	nSrc := a.SourceHeads
	nHeads := len(a.Heads)
	queues := nHeads - nSrc

	coreAvail := e.m.Cores - nSrc
	if coreAvail < 1 {
		coreAvail = 1
	}
	// Per-head loads, as in Throughput.
	loads := make([]float64, nHeads)
	tupleBytes := float64(e.payloadBytes) + 64
	poolThreads := float64(minInt(e.threads, coreAvail))
	scan := e.m.ScanPerQueue * float64(queues)
	if e.dedicated {
		scan = 0
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		svc := costs[i] * e.m.SecPerFLOP
		if nd.Contended {
			svc += e.m.ContentionCost * e.contenders(a, i, poolThreads)
		}
		for h, w := range a.Dist[i] {
			loads[h] += rates[i] * w * svc
		}
	}
	for h := 0; h < nSrc; h++ {
		loads[h] += e.m.SourceOverhead
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		for _, eg := range nd.Out {
			to := e.g.Node(eg.To)
			if to.Source || !e.placement[eg.To] {
				continue
			}
			edgeRate := rates[i] * eg.RateFactor
			prod := e.m.CopyPerByte*tupleBytes + e.m.EnqueueCost
			for h, w := range a.Dist[i] {
				loads[h] += edgeRate * w * prod
			}
			loads[a.HeadIndex[eg.To]] += edgeRate * (e.m.DequeueCost + scan)
		}
	}

	// Offered per-source rate and resource utilizations.
	x := e.Throughput()
	sinkRate := 0.0
	for _, s := range e.g.Sinks() {
		sinkRate += rates[s]
	}
	if sinkRate > 0 {
		x /= sinkRate // back to per-source units
	}
	x *= fraction

	rhoOf := func(head int) float64 {
		var rho float64
		if head < nSrc {
			rho = x * loads[head]
		} else {
			pooled := 0.0
			for h := nSrc; h < nHeads; h++ {
				pooled += loads[h]
			}
			cap := e.poolCapacity(coreAvail)
			if e.dedicated {
				cap = 1
				pooled = loads[head]
			}
			rho = x * pooled / cap
		}
		if rho > 0.999 {
			rho = 0.999
		}
		if rho < 0 {
			rho = 0
		}
		return rho
	}

	// Per-node sojourn: service plus waiting when entering a region head.
	sojourn := make([]float64, e.g.NumNodes())
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		svc := costs[i] * e.m.SecPerFLOP
		if nd.Contended {
			svc += e.m.ContentionCost * e.contenders(a, i, poolThreads)
		}
		s := svc
		if hi := a.HeadIndex[i]; hi >= nSrc {
			// Entering a scheduler queue: copy, enqueue, dequeue, scan,
			// and queueing delay at the pool's utilization.
			cross := e.m.CopyPerByte*tupleBytes + e.m.EnqueueCost + e.m.DequeueCost + scan
			rho := rhoOf(hi)
			s += cross + (svc+cross)*rho/(1-rho)
		}
		sojourn[i] = s
	}
	// Source emission delay.
	srcWait := make(map[graph.NodeID]float64, nSrc)
	for h := 0; h < nSrc; h++ {
		rho := rhoOf(h)
		srcWait[a.Heads[h]] = e.m.SourceOverhead * (1 + rho/(1-rho))
	}

	// Longest path in topological order.
	longest := make([]float64, e.g.NumNodes())
	for _, id := range e.g.Topo() {
		nd := e.g.Node(id)
		base := longest[id]
		if nd.Source {
			base = srcWait[id]
		}
		base += sojourn[id]
		longest[id] = base
		for _, eg := range nd.Out {
			if longest[eg.To] < base {
				longest[eg.To] = base
			}
		}
	}
	maxLat := 0.0
	for _, s := range e.g.Sinks() {
		if longest[s] > maxLat {
			maxLat = longest[s]
		}
	}
	if math.IsNaN(maxLat) || math.IsInf(maxLat, 0) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(maxLat * float64(time.Second))
}
