package sim

import (
	"math"
	"testing"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

func TestExplainMatchesThroughput(t *testing.T) {
	g := pipeline(t, 50, 200)
	e := newEngine(t, g, Xeon176().WithCores(32), WithPayload(1024))
	for _, k := range []int{0, 2, 10} {
		var p []bool
		if k == 0 {
			p = make([]bool, g.NumNodes())
		} else {
			p = placeEvery(g, 49/k)
		}
		if err := e.ApplyPlacement(p); err != nil {
			t.Fatal(err)
		}
		if err := e.SetThreadCount(8); err != nil {
			t.Fatal(err)
		}
		got := e.Explain()
		want := e.Throughput()
		if math.Abs(got.Throughput-want)/want > 1e-9 {
			t.Fatalf("Explain throughput %v != Throughput %v", got.Throughput, want)
		}
	}
}

func TestExplainSourceBound(t *testing.T) {
	// All work stays on the source thread: manual placement.
	g := pipeline(t, 20, 1000)
	e := newEngine(t, g, Xeon176())
	ex := e.Explain()
	if ex.Bottleneck != BottleneckSource {
		t.Fatalf("manual pipeline bottleneck = %v, want source-thread", ex.Bottleneck)
	}
	if ex.Detail == "" {
		t.Fatal("source bottleneck missing detail")
	}
}

func TestExplainPoolBound(t *testing.T) {
	// Heavy ops behind queues with a tiny pool: the pool binds.
	g := pipeline(t, 20, 100_000)
	e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(16))
	if err := e.ApplyPlacement(placeEvery(g, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	if ex := e.Explain(); ex.Bottleneck != BottleneckPool {
		t.Fatalf("bottleneck = %v, want scheduler-pool", ex.Bottleneck)
	}
}

func TestExplainMemoryBandwidthBound(t *testing.T) {
	// Huge payloads across many queues: copying saturates memory
	// bandwidth.
	g := pipeline(t, 100, 100)
	e := newEngine(t, g, Xeon176(), WithPayload(16384))
	if err := e.ApplyPlacement(placeEvery(g, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(170); err != nil {
		t.Fatal(err)
	}
	if ex := e.Explain(); ex.Bottleneck != BottleneckMemBandwidth {
		t.Fatalf("bottleneck = %v, want memory-bandwidth", ex.Bottleneck)
	}
}

func TestExplainContentionBound(t *testing.T) {
	g := graph.New()
	src := g.AddSource(nil, spl.NewCostVar(0))
	w := g.AddOperator(nil, spl.NewCostVar(10))
	snk := g.AddOperator(nil, spl.NewCostVar(1))
	if err := g.Connect(src, 0, w, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(w, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	g.SetContended(snk)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(16))
	all := []bool{false, true, true}
	if err := e.ApplyPlacement(all); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(87); err != nil {
		t.Fatal(err)
	}
	if ex := e.Explain(); ex.Bottleneck != BottleneckContention {
		t.Fatalf("bottleneck = %v, want lock-contention", ex.Bottleneck)
	}
}

func TestExplainQueueSerialBound(t *testing.T) {
	// One queue fed by the whole pool at tiny per-op cost: the queue's CAS
	// serialization binds.
	g := pipeline(t, 40, 1)
	e := newEngine(t, g, Xeon176().WithCores(88), WithPayload(0))
	p := make([]bool, g.NumNodes())
	p[1] = true
	if err := e.ApplyPlacement(p); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(87); err != nil {
		t.Fatal(err)
	}
	ex := e.Explain()
	if ex.Bottleneck != BottleneckQueueSerial {
		t.Fatalf("bottleneck = %v, want queue-serialization", ex.Bottleneck)
	}
}

func TestBottleneckString(t *testing.T) {
	names := map[Bottleneck]string{
		BottleneckSource:       "source-thread",
		BottleneckPool:         "scheduler-pool",
		BottleneckCores:        "cores",
		BottleneckQueueSerial:  "queue-serialization",
		BottleneckContention:   "lock-contention",
		BottleneckMemBandwidth: "memory-bandwidth",
		Bottleneck(0):          "unknown",
	}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}
