package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"streamelastic/internal/graph"
)

// Engine is a simulated processing element implementing core.Engine. Given
// a graph, a queue placement and a thread count it computes steady-state
// sink throughput from a bottleneck model (see Machine for the cost
// constants and DESIGN.md for the derivation), applies deterministic
// measurement noise, and advances a virtual clock one adaptation period per
// observation.
type Engine struct {
	g *graph.Graph
	m Machine

	payloadBytes int
	period       time.Duration
	seed         uint64
	maxThreads   int
	dedicated    bool

	placement []bool
	threads   int

	attr  *graph.Attribution
	dirty bool

	clock time.Duration
	obs   uint64
}

// Option configures a simulated engine.
type Option func(*Engine)

// WithPayload sets the tuple payload size in bytes (default 0).
func WithPayload(bytes int) Option {
	return func(e *Engine) { e.payloadBytes = bytes }
}

// WithPeriod sets the adaptation period the virtual clock advances per
// observation (default 5s, the paper's period).
func WithPeriod(d time.Duration) Option {
	return func(e *Engine) { e.period = d }
}

// WithSeed sets the deterministic noise seed.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithMaxThreads overrides the scheduler-thread cap (default 2x cores).
func WithMaxThreads(n int) Option {
	return func(e *Engine) { e.maxThreads = n }
}

// WithDedicatedPorts models hand-optimized manual threading: every queue is
// a threaded port owned by exactly one dedicated thread, there is no
// work-finding scan, and the thread count equals the queue count. This is
// the baseline the paper's hand-optimized VWAP and PacketAnalysis variants
// use.
func WithDedicatedPorts() Option {
	return func(e *Engine) { e.dedicated = true }
}

// New returns a simulated engine for the finalized graph g on machine m,
// starting with all operators manual and one scheduler thread.
func New(g *graph.Graph, m Machine, opts ...Option) (*Engine, error) {
	if !g.Finalized() {
		return nil, errors.New("sim: graph not finalized")
	}
	if m.Cores < 1 {
		return nil, fmt.Errorf("sim: machine has %d cores", m.Cores)
	}
	e := &Engine{
		g:         g,
		m:         m,
		period:    5 * time.Second,
		seed:      1,
		placement: make([]bool, g.NumNodes()),
		threads:   1,
		dirty:     true,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.maxThreads == 0 {
		e.maxThreads = 2 * m.Cores
	}
	return e, nil
}

// NumOperators implements core.Engine.
func (e *Engine) NumOperators() int { return e.g.NumNodes() }

// Placeable implements core.Engine: every non-source operator can take a
// scheduler queue.
func (e *Engine) Placeable() []bool {
	out := make([]bool, e.g.NumNodes())
	for i := range out {
		out[i] = !e.g.Node(graph.NodeID(i)).Source
	}
	return out
}

// CostMetric implements core.Engine. The simulated profiler observes each
// operator in proportion to rate x service time, which is what snapshot
// counting of per-thread state converges to.
func (e *Engine) CostMetric() []float64 {
	rates := e.g.Rates()
	costs := e.g.Costs()
	out := make([]float64, e.g.NumNodes())
	for i := range out {
		out[i] = rates[i] * costs[i]
	}
	return out
}

// Placement implements core.Engine.
func (e *Engine) Placement() []bool {
	out := make([]bool, len(e.placement))
	copy(out, e.placement)
	return out
}

// ApplyPlacement implements core.Engine.
func (e *Engine) ApplyPlacement(dynamic []bool) error {
	if len(dynamic) != len(e.placement) {
		return fmt.Errorf("sim: placement length %d, want %d", len(dynamic), len(e.placement))
	}
	copy(e.placement, dynamic)
	e.dirty = true
	return nil
}

// ThreadCount implements core.Engine. In dedicated-port mode the count is
// fixed at one thread per queue.
func (e *Engine) ThreadCount() int {
	if e.dedicated {
		return graph.QueueCount(e.g, e.placement)
	}
	return e.threads
}

// SetThreadCount implements core.Engine.
func (e *Engine) SetThreadCount(n int) error {
	if e.dedicated {
		return errors.New("sim: dedicated-port engine has a fixed thread count")
	}
	if n < 1 || n > e.maxThreads {
		return fmt.Errorf("sim: thread count %d outside [1, %d]", n, e.maxThreads)
	}
	e.threads = n
	return nil
}

// MaxThreads implements core.Engine.
func (e *Engine) MaxThreads() int { return e.maxThreads }

// Observe implements core.Engine: it returns the modeled throughput with
// deterministic noise applied and advances the virtual clock by one
// adaptation period.
func (e *Engine) Observe() (float64, error) {
	thr := e.Throughput()
	e.obs++
	e.clock += e.period
	return thr * e.noise(), nil
}

// Now implements core.Engine, returning the virtual clock.
func (e *Engine) Now() time.Duration { return e.clock }

// noise returns a deterministic multiplicative factor in
// [1-NoiseAmp, 1+NoiseAmp] derived from the seed and observation counter.
func (e *Engine) noise() float64 {
	if e.m.NoiseAmp == 0 {
		return 1
	}
	h := splitmix64(e.seed ^ (e.obs * 0x9e3779b97f4a7c15))
	u := float64(h>>11)/float64(1<<53)*2 - 1 // [-1, 1)
	return 1 + e.m.NoiseAmp*u
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Throughput returns the modeled steady-state sink throughput (tuples per
// second) for the current configuration, without noise and without
// advancing the clock. Sweep-style experiments use it directly.
func (e *Engine) Throughput() float64 {
	if e.dirty {
		e.attr = graph.Attribute(e.g, e.placement)
		e.dirty = false
	}
	a := e.attr
	rates := e.g.Rates()
	costs := e.g.Costs()
	nHeads := len(a.Heads)
	nSrc := a.SourceHeads
	queues := nHeads - nSrc

	coreAvail := e.m.Cores - nSrc
	if coreAvail < 1 {
		coreAvail = 1
	}

	// Per-region service time per unit source rate.
	loads := make([]float64, nHeads)
	tupleBytes := float64(e.payloadBytes) + 64 // header estimate
	poolThreads := float64(minInt(e.threads, coreAvail))

	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		svc := costs[i] * e.m.SecPerFLOP
		if nd.Contended {
			svc += e.m.ContentionCost * e.contenders(a, i, poolThreads)
		}
		r := rates[i]
		for h, w := range a.Dist[i] {
			loads[h] += r * w * svc
		}
	}
	for h := 0; h < nSrc; h++ {
		loads[h] += e.m.SourceOverhead
	}

	// Queue-crossing costs and copied bytes.
	copied := 0.0
	scan := e.m.ScanPerQueue * float64(queues)
	if e.dedicated {
		scan = 0
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		for _, eg := range nd.Out {
			to := e.g.Node(eg.To)
			if to.Source || !e.placement[eg.To] {
				continue
			}
			edgeRate := rates[i] * eg.RateFactor
			prod := e.m.CopyPerByte*tupleBytes + e.m.EnqueueCost
			for h, w := range a.Dist[i] {
				loads[h] += edgeRate * w * prod
			}
			loads[a.HeadIndex[eg.To]] += edgeRate * (e.m.DequeueCost + scan)
			copied += edgeRate * tupleBytes
		}
	}

	// Bottleneck analysis: x is the per-source emission rate.
	x := math.Inf(1)
	// Each source region is executed serially by its operator thread.
	for h := 0; h < nSrc; h++ {
		if loads[h] > 0 {
			x = math.Min(x, 1/loads[h])
		}
	}
	// Pooled regions share the scheduler threads (or own one thread each
	// in dedicated mode).
	pooled := 0.0
	for h := nSrc; h < nHeads; h++ {
		pooled += loads[h]
	}
	if pooled > 0 {
		if e.dedicated {
			for h := nSrc; h < nHeads; h++ {
				if loads[h] > 0 {
					x = math.Min(x, 1/loads[h])
				}
			}
		} else {
			x = math.Min(x, e.poolCapacity(coreAvail)/pooled)
		}
	}
	// Total CPU cannot exceed the machine.
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total > 0 {
		x = math.Min(x, float64(e.m.Cores)/total)
	}
	// A single queue serializes its crossings, and the serial section
	// lengthens with CAS contention as more pool threads share fewer
	// queues. This is what makes very sparse queue placements (one or two
	// queues for a hundred threads) a bottleneck in practice.
	if e.m.QueueSerialCost > 0 && queues > 0 {
		perQueue := poolThreads / float64(queues)
		if e.dedicated || perQueue < 1 {
			perQueue = 1
		}
		serial := e.m.QueueSerialCost * perQueue
		for h := nSrc; h < nHeads; h++ {
			if r := rates[a.Heads[h]]; r > 0 {
				x = math.Min(x, 1/(serial*r))
			}
		}
	}
	// A lock-contended operator executes serially no matter how many
	// threads feed it: its throughput bounds the system (the Fig. 10 sink
	// effect).
	for i := 0; i < e.g.NumNodes(); i++ {
		nd := e.g.Node(graph.NodeID(i))
		if !nd.Contended || rates[i] <= 0 {
			continue
		}
		svc := costs[i] * e.m.SecPerFLOP
		svc += e.m.ContentionCost * e.contenders(a, i, poolThreads)
		if svc > 0 {
			x = math.Min(x, 1/(rates[i]*svc))
		}
	}
	// Aggregate queue copying is bounded by memory bandwidth.
	if copied > 0 && e.m.MemBandwidth > 0 {
		x = math.Min(x, e.m.MemBandwidth/copied)
	}
	if math.IsInf(x, 1) {
		return 0
	}

	sinkRate := 0.0
	for _, s := range e.g.Sinks() {
		sinkRate += rates[s]
	}
	return x * sinkRate
}

// poolCapacity returns the effective parallelism of the scheduler-thread
// pool, with a gentle oversubscription penalty beyond the available cores
// so that excessive thread counts measurably degrade throughput.
func (e *Engine) poolCapacity(coreAvail int) float64 {
	t := float64(e.threads)
	c := float64(coreAvail)
	if t <= c {
		return t
	}
	return c * math.Pow(c/t, e.m.OversubAlpha)
}

// contenders estimates how many additional executors contend on node i's
// internal lock: one per source region touching it, plus the scheduler pool
// (or one per dedicated region) when any pooled region touches it.
func (e *Engine) contenders(a *graph.Attribution, i int, poolThreads float64) float64 {
	srcTouch := 0.0
	pooledHeads := 0.0
	for h, w := range a.Dist[i] {
		if w <= 0 {
			continue
		}
		if h < a.SourceHeads {
			srcTouch++
		} else {
			pooledHeads++
		}
	}
	n := srcTouch
	if pooledHeads > 0 {
		if e.dedicated {
			n += pooledHeads
		} else {
			n += poolThreads
		}
	}
	if n <= 1 {
		return 0
	}
	return n - 1
}

// Queues returns the current number of scheduler queues.
func (e *Engine) Queues() int {
	return graph.QueueCount(e.g, e.placement)
}

// Machine returns the modeled machine.
func (e *Engine) Machine() Machine { return e.m }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
