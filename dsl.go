package streamelastic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseTopology builds a Topology from a compact textual description, in
// the spirit of the paper's SPL programs: one declaration per line.
//
//	# comments and blank lines are ignored
//	source <name> generator [payload=N] [tuples=N] [keys=N] [cost=F] [rate=F]
//	op     <name> work      flops=F
//	op     <name> tokenize  [rate-hint via edge]
//	op     <name> split     width=N
//	op     <name> sample    k=N
//	op     <name> union
//	op     <name> counter   [window=N] [every=N]
//	op     <name> join      [unmatched=emit]
//	op     <name> timewindow size=DUR [slide=DUR] [fn=count|sum|avg|min|max]
//	op     <name> reorder   [start=N] [cap=N]
//	op     <name> sink
//	edge   <from>[.port] -> <to>[.port] [rate=F]
//	contended <name>
//
// source rate=F wraps the generator in a throttle of F tuples/second. Edge
// ports default to 0; edge rate defaults to 1. Returns the topology and the
// name->node mapping.
func ParseTopology(r io.Reader) (*Topology, map[string]NodeID, error) {
	top := NewTopology()
	nodes := make(map[string]NodeID)
	sinks := make(map[string]*CountingSink)
	_ = sinks

	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "source":
			if len(fields) < 3 {
				return nil, nil, fail("source needs a name and a kind")
			}
			name, kind := fields[1], fields[2]
			if _, dup := nodes[name]; dup {
				return nil, nil, fail("duplicate node %q", name)
			}
			if kind != "generator" {
				return nil, nil, fail("unknown source kind %q", kind)
			}
			kv, err := parseKV(fields[3:])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			gen := NewGenerator(name, int(kv.num("payload", 0)))
			gen.MaxTuples = uint64(kv.num("tuples", 0))
			gen.Keys = uint64(kv.num("keys", 0))
			var src Source = gen
			if rate := kv.num("rate", 0); rate > 0 {
				src = NewThrottle(gen, rate)
			}
			nodes[name] = top.AddSource(src, kv.num("cost", 0))

		case "op":
			if len(fields) < 3 {
				return nil, nil, fail("op needs a name and a kind")
			}
			name, kind := fields[1], fields[2]
			if _, dup := nodes[name]; dup {
				return nil, nil, fail("duplicate node %q", name)
			}
			kv, err := parseKV(fields[3:])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			var (
				op   Operator
				cost float64
			)
			switch kind {
			case "work":
				cost = kv.num("flops", 0)
				if cost <= 0 {
					return nil, nil, fail("work needs flops=F > 0")
				}
				op = NewWorkOp(name, cost)
			case "tokenize":
				op = NewTokenize(name)
				cost = kv.num("cost", 0)
			case "split":
				width := int(kv.num("width", 0))
				if width < 1 {
					return nil, nil, fail("split needs width=N >= 1")
				}
				op = NewRoundRobinSplit(name, width)
				cost = kv.num("cost", 0)
			case "sample":
				op = NewSample(name, int(kv.num("k", 1)))
				cost = kv.num("cost", 0)
			case "union":
				op = NewUnion(name)
				cost = kv.num("cost", 0)
			case "counter":
				op = NewKeyedCounter(name, int(kv.num("window", 1024)), int(kv.num("every", 1)))
				cost = kv.num("cost", 0)
			case "timewindow":
				size, err := kv.dur("size")
				if err != nil || size <= 0 {
					return nil, nil, fail("timewindow needs size=DUR")
				}
				slide, _ := kv.dur("slide")
				fn, err := parseAggFunc(kv.str("fn", "count"))
				if err != nil {
					return nil, nil, fail("%v", err)
				}
				op = NewTimeWindow(name, size, slide, fn)
				cost = kv.num("cost", 0)
			case "join":
				j := NewKeyedJoin(name)
				if kv.str("unmatched", "") == "emit" {
					j.EmitUnmatched = true
				}
				op = j
				cost = kv.num("cost", 0)
			case "reorder":
				op = NewReorder(name, uint64(kv.num("start", 0)), int(kv.num("cap", 1024)))
				cost = kv.num("cost", 0)
			case "sink":
				op = NewCountingSink(name)
				cost = kv.num("cost", 0)
			default:
				return nil, nil, fail("unknown op kind %q", kind)
			}
			nodes[name] = top.AddOperator(op, cost)

		case "edge":
			// edge a.0 -> b.1 rate=0.5
			if len(fields) < 4 || fields[2] != "->" {
				return nil, nil, fail("edge syntax: edge <from>[.port] -> <to>[.port] [rate=F]")
			}
			from, fromPort, err := parseEndpoint(fields[1], nodes)
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			to, toPort, err := parseEndpoint(fields[3], nodes)
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			kv, err := parseKV(fields[4:])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			rate := kv.num("rate", 1)
			if err := top.ConnectRate(from, fromPort, to, toPort, rate); err != nil {
				return nil, nil, fail("%v", err)
			}

		case "contended":
			if len(fields) != 2 {
				return nil, nil, fail("contended needs a node name")
			}
			id, ok := nodes[fields[1]]
			if !ok {
				return nil, nil, fail("unknown node %q", fields[1])
			}
			top.MarkContended(id)

		default:
			return nil, nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, err
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("empty topology description")
	}
	return top, nodes, nil
}

// kvPairs holds parsed key=value options.
type kvPairs map[string]string

func parseKV(fields []string) (kvPairs, error) {
	kv := make(kvPairs, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		kv[k] = v
	}
	return kv, nil
}

func (kv kvPairs) num(key string, def float64) float64 {
	v, ok := kv[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def
	}
	return f
}

func (kv kvPairs) str(key, def string) string {
	if v, ok := kv[key]; ok {
		return v
	}
	return def
}

func (kv kvPairs) dur(key string) (time.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return 0, nil
	}
	return time.ParseDuration(v)
}

func parseEndpoint(s string, nodes map[string]NodeID) (NodeID, int, error) {
	name, portStr, hasPort := strings.Cut(s, ".")
	id, ok := nodes[name]
	if !ok {
		return 0, 0, fmt.Errorf("unknown node %q", name)
	}
	port := 0
	if hasPort {
		p, err := strconv.Atoi(portStr)
		if err != nil || p < 0 {
			return 0, 0, fmt.Errorf("invalid port %q on %q", portStr, name)
		}
		port = p
	}
	return id, port, nil
}

func parseAggFunc(s string) (AggregateFunc, error) {
	switch s {
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "avg":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("unknown aggregate function %q", s)
	}
}
