package streamelastic

import (
	"fmt"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
)

// Machine describes a simulated host: core count and the cost constants of
// the performance model (copy bandwidth, queue synchronization, scan and
// contention costs).
type Machine = sim.Machine

// Xeon176 models the paper's 176-logical-core Xeon system.
func Xeon176() Machine { return sim.Xeon176() }

// Power8 models the paper's 184-logical-core Power8 system.
func Power8() Machine { return sim.Power8() }

// SimOptions configure a simulation.
type SimOptions struct {
	// PayloadBytes is the tuple payload size the model charges for queue
	// copies.
	PayloadBytes int
	// Period is the virtual adaptation period (default 5s, the paper's).
	Period time.Duration
	// MaxThreads caps the thread exploration (default 2x cores).
	MaxThreads int
	// Seed drives the deterministic measurement noise.
	Seed uint64
	// Elastic tunes the controllers; zero value means
	// DefaultElasticConfig.
	Elastic ElasticConfig
	// WarmStart restores a previously captured configuration; the
	// simulation starts settled there (see RuntimeOptions.WarmStart).
	WarmStart *ConfigSnapshot
}

// Simulation adapts a topology on a simulated machine: a thousand-second
// adaptation on a hundred-core host replays in microseconds,
// deterministically. Use it for capacity planning, controller tuning and
// reproducing the paper's experiments.
type Simulation struct {
	eng   *sim.Engine
	coord *core.Coordinator
}

// NewSimulation validates the topology and prepares a simulation on m.
func NewSimulation(t *Topology, m Machine, opts SimOptions) (*Simulation, error) {
	g, err := t.freeze()
	if err != nil {
		return nil, err
	}
	var simOpts []sim.Option
	if opts.PayloadBytes > 0 {
		simOpts = append(simOpts, sim.WithPayload(opts.PayloadBytes))
	}
	if opts.Period > 0 {
		simOpts = append(simOpts, sim.WithPeriod(opts.Period))
	}
	if opts.MaxThreads > 0 {
		simOpts = append(simOpts, sim.WithMaxThreads(opts.MaxThreads))
	}
	if opts.Seed != 0 {
		simOpts = append(simOpts, sim.WithSeed(opts.Seed))
	}
	eng, err := sim.New(g, m, simOpts...)
	if err != nil {
		return nil, err
	}
	cfg := opts.Elastic
	if cfg == (ElasticConfig{}) {
		cfg = DefaultElasticConfig()
	}
	var coord *core.Coordinator
	if opts.WarmStart != nil {
		coord, err = core.NewCoordinatorFrom(eng, cfg, *opts.WarmStart)
	} else {
		coord, err = core.NewCoordinator(eng, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("streamelastic: %w", err)
	}
	return &Simulation{eng: eng, coord: coord}, nil
}

// ConfigSnapshot captures the current elastic configuration for a warm
// start (for example of the live Runtime that the simulation modeled).
func (s *Simulation) ConfigSnapshot() ConfigSnapshot {
	return s.coord.ConfigSnapshot()
}

// Explanation describes which performance-model constraint limits the
// current configuration (source thread, scheduler pool, memory bandwidth,
// lock contention, queue serialization, or cores).
type Explanation = sim.Explanation

// Explain reports the binding bottleneck of the current configuration.
func (s *Simulation) Explain() Explanation {
	return s.eng.Explain()
}

// EstimateLatency predicts the mean end-to-end tuple latency of the
// current configuration when offered the given fraction (0,1] of its
// maximum throughput, using an M/M/1-style queueing approximation per
// region.
func (s *Simulation) EstimateLatency(loadFraction float64) time.Duration {
	return s.eng.EstimateLatency(loadFraction)
}

// RunUntilSettled advances adaptation until it converges or maxSteps
// virtual periods elapse, reporting the steps taken and whether it settled.
func (s *Simulation) RunUntilSettled(maxSteps int) (int, bool, error) {
	return s.coord.RunUntilSettled(maxSteps)
}

// Step advances one virtual adaptation period; it reports whether the
// system is settled afterwards. Use it to keep monitoring after
// convergence (for example across a workload change).
func (s *Simulation) Step() (bool, error) { return s.coord.Step() }

// Throughput returns the modeled steady-state sink throughput of the
// current configuration in tuples per second.
func (s *Simulation) Throughput() float64 { return s.eng.Throughput() }

// Threads returns the current scheduler-thread count.
func (s *Simulation) Threads() int { return s.eng.ThreadCount() }

// Queues returns the current number of scheduler queues.
func (s *Simulation) Queues() int { return s.eng.Queues() }

// Placement returns the threading-model choice per operator.
func (s *Simulation) Placement() []bool { return s.eng.Placement() }

// Now returns the virtual clock.
func (s *Simulation) Now() time.Duration { return s.eng.Now() }

// Settled reports whether adaptation has converged.
func (s *Simulation) Settled() bool { return s.coord.Settled() }

// Trace returns the adaptation trace.
func (s *Simulation) Trace() []TraceEvent { return s.coord.Trace() }
