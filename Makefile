GO ?= go

# Packages with lock-free / pooled hot-path code that must stay race-clean.
RACE_PKGS := ./internal/exec/... ./internal/queue/... ./internal/spl/...

# Benchmark packages; bench output is benchstat-comparable (go test -json).
BENCH_PKGS := ./internal/exec/... ./internal/queue/...
BENCH_OUT  := BENCH_1.json

.PHONY: build test race vet bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

vet:
	$(GO) vet ./...

# bench writes machine-readable benchmark results to $(BENCH_OUT); feed the
# file to `benchstat` (or compare two runs' files) to track hot-path
# regressions across commits.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem $(BENCH_PKGS) > $(BENCH_OUT)

# Short deterministic pass over the MPMC batch-operation fuzz corpus.
fuzz:
	$(GO) test ./internal/queue/ -run '^$$' -fuzz FuzzMPMCBatchOps -fuzztime 20s
