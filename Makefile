GO ?= go

# Packages with lock-free / pooled hot-path code that must stay race-clean.
RACE_PKGS := ./internal/exec/... ./internal/queue/... ./internal/spl/... ./internal/pe/... ./internal/obs/... ./internal/metrics/... ./internal/cluster/...

# Benchmark packages; bench output is benchstat-comparable (go test -json).
BENCH_PKGS := ./internal/exec/... ./internal/queue/...
BENCH_OUT  := BENCH_1.json

# Inter-PE transport benchmarks: batched vs per-tuple-flush loopback runs
# plus the zero-alloc encode/decode microbenchmarks.
BENCH_PE_OUT := BENCH_2.json

# Work-stealing scheduler benchmarks: shared-MPMC vs stealing on the
# contended fan-in shape at 2/4/8/16 workers, plus the deque
# microbenchmarks (push/pop and steal-half, both 0 allocs/op).
BENCH_SCHED_OUT := BENCH_4.json

# Observability benchmarks: registry instrument hot paths (counter inc,
# sharded histogram observe, flight-recorder record — all 0 allocs/op) and
# the end-to-end sampling overhead sweep (off / 1% / every tuple).
BENCH_OBS_OUT := BENCH_5.json

# Hot-path benchmarks for the shared-point-elimination round: the contended
# fan-in worker sweep with both sink-metering modes (sharded vs the mutex
# baseline — the Fig. 10 comparison), plus the zero-copy decode
# microbenchmarks. Results embed GOMAXPROCS as a reported metric.
BENCH_HOTPATH_OUT := BENCH_6.json

# Region-compilation benchmarks: interpreted tuple-at-a-time vs compiled
# batch execution on deep all-manual chains (tuples/s, 0 allocs/op both
# modes; gomaxprocs reported).
BENCH_FUSED_OUT := BENCH_7.json

# Checkpoint overhead benchmarks: live keyed-pipeline throughput with
# checkpointing off vs 1s vs 100ms intervals against a file-backed log.
# The acceptance bar: <= 10% tuples/s loss at the 1s interval vs off.
BENCH_CKPT_OUT := BENCH_8.json

# Wire-format benchmarks: v2 batch frames vs v1 frame-per-tuple at equal
# flush policy (BenchmarkExportImportWire), plus the batch encode/decode
# steady-state microbenchmarks (0 allocs/op). Every row reports gomaxprocs.
BENCH_WIRE_OUT := BENCH_9.json

# Cluster elasticity benchmarks: time-to-settle and delivery-rate dip for
# live grow 2->4 / shrink 4->2 of a running stateful pipeline (per-cycle
# settle_grow_ms / settle_shrink_ms, deepest 50ms throughput window during
# each transition as a fraction of steady state, gomaxprocs provenance).
BENCH_CLUSTER_OUT := BENCH_10.json

# Repeat count for benchstat-bound runs: benchstat needs several samples
# per key to average and mark significance, one run proves nothing.
BENCH_COUNT ?= 5

.PHONY: build test race vet bench bench-pe bench-sched bench-sched-smoke bench-hotpath bench-hotpath-smoke bench-obs bench-fused bench-fused-smoke bench-ckpt bench-ckpt-smoke bench-wire bench-wire-smoke bench-cluster bench-cluster-smoke benchstat fuzz fuzz-pe fuzz-wire fuzz-deque fuzz-obs fuzz-batch fuzz-ckpt chaos chaos-state chaos-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

vet:
	$(GO) vet ./...

# bench writes machine-readable benchmark results to $(BENCH_OUT); feed the
# file to `benchstat` (or compare two runs' files) to track hot-path
# regressions across commits.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem $(BENCH_PKGS) > $(BENCH_OUT)

# bench-pe writes the transport benchmark results (tuples/s and allocs/op
# for export->import at 64B/1KiB/16KiB payloads, batched vs per-tuple
# flush) to $(BENCH_PE_OUT) in the same benchstat-comparable format.
bench-pe:
	$(GO) test -json -run '^$$' -bench 'ExportImport|SteadyState' -benchmem ./internal/pe/ > $(BENCH_PE_OUT)

# bench-sched writes the scheduler comparison (tuples/s for shared vs
# stealing on the contended fan-in, deque allocs/op) to $(BENCH_SCHED_OUT);
# compare shared/workers=N against steal/workers=N with benchstat.
bench-sched:
	$(GO) test -json -run '^$$' -bench 'ContendedFanIn' -benchmem ./internal/exec/ > $(BENCH_SCHED_OUT)
	$(GO) test -json -run '^$$' -bench 'WSDeque' -benchmem ./internal/queue/ >> $(BENCH_SCHED_OUT)

# One-iteration smoke of the same benchmarks for CI: proves they run, makes
# no timing claims.
bench-sched-smoke:
	$(GO) test -run '^$$' -bench 'ContendedFanIn' -benchtime 1x -benchmem ./internal/exec/
	$(GO) test -run '^$$' -bench 'WSDeque' -benchtime 1x -benchmem ./internal/queue/

# bench-hotpath writes the raw-speed round 2 results to
# $(BENCH_HOTPATH_OUT): the contended fan-in at 2/4/8/16 workers in both
# scheduler modes with the sharded sink AND the locked-sink baseline (every
# run reports a gomaxprocs metric — on a 1-core box the sharded/locked gap
# collapses because nothing truly contends), plus the decode benchmarks
# showing zero payload-copy allocs. The sweep is benchstat-ready: per-worker
# sub-benchmark keys plus $(BENCH_COUNT) repeats per key, so the multi-core
# rerun is this one command followed by
# `make benchstat OLD=BENCH_6.json NEW=<new file>`.
bench-hotpath:
	$(GO) test -json -run '^$$' -bench 'ContendedFanIn' -benchmem -count=$(BENCH_COUNT) ./internal/exec/ > $(BENCH_HOTPATH_OUT)
	$(GO) test -json -run '^$$' -bench 'Decode|ExportImport' -benchmem -count=$(BENCH_COUNT) ./internal/pe/ >> $(BENCH_HOTPATH_OUT)

# One-hundred-iteration smoke of the fan-in benches for CI, both sink
# modes: proves they build and run without panicking, makes no timing
# claims.
bench-hotpath-smoke:
	$(GO) test -run '^$$' -bench 'ContendedFanIn' -benchtime 100x -benchmem ./internal/exec/

# bench-obs writes the observability overhead results (instrument
# microbenchmarks plus the queue-crossing sampling sweep) to
# $(BENCH_OBS_OUT); compare sampling=off against sampling=every with
# benchstat to bound the instrumentation tax.
bench-obs:
	$(GO) test -json -run '^$$' -bench 'CounterInc|HistogramObserve|FlightRecord' -benchmem ./internal/obs/ > $(BENCH_OBS_OUT)
	$(GO) test -json -run '^$$' -bench 'QueueCrossingSampling' -benchmem ./internal/exec/ >> $(BENCH_OBS_OUT)

# bench-ckpt writes the checkpoint overhead sweep to $(BENCH_CKPT_OUT):
# BenchmarkCheckpoint/off vs /1s vs /100ms on the live keyed pipeline,
# five runs each (the off-vs-1s gap is single-digit percent, so the claim
# needs averages, not one sample). Compare off against 1s with benchstat
# to verify the <= 10% overhead bar.
bench-ckpt:
	$(GO) test -json -run '^$$' -bench 'BenchmarkCheckpoint' -benchmem -count=5 ./internal/exec/ > $(BENCH_CKPT_OUT)

# One-iteration smoke of the checkpoint benches for CI: proves they run,
# makes no timing claims.
bench-ckpt-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCheckpoint' -benchtime 1x -benchmem ./internal/exec/

# bench-fused writes the region-compilation comparison to
# $(BENCH_FUSED_OUT): BenchmarkManualChain scalar vs fused at depth 4 and
# 16. The acceptance bar for the compiled path is >= 1.5x tuples/s over
# scalar on the deep chain with 0 allocs/op; check with
# `make benchstat OLD=... NEW=BENCH_7.json` or compare the fused/scalar
# rows directly.
bench-fused:
	$(GO) test -json -run '^$$' -bench 'ManualChain' -benchmem ./internal/exec/ > $(BENCH_FUSED_OUT)

# One-hundred-iteration smoke of the fused benches for CI: proves the
# compiled path builds and runs, makes no timing claims.
bench-fused-smoke:
	$(GO) test -run '^$$' -bench 'ManualChain' -benchtime 100x -benchmem ./internal/exec/

# bench-wire writes the wire-format A/B to $(BENCH_WIRE_OUT):
# BenchmarkExportImportWire wire=batch vs wire=pertuple at 16B/64B/1KiB/
# 16KiB payloads under identical flush policy ($(BENCH_COUNT) repeats per
# key at 2s each — the end-to-end loopback needs a couple of seconds of
# steady state before connection setup, pool warmup, and ring fill stop
# skewing the sample; compare wire=batch/payload=N against
# wire=pertuple/payload=N with benchstat), plus the batch encode/decode
# steady-state microbenchmarks. The acceptance bar: >= 1.5x tuples/s for
# batch over per-tuple on tuples whose record fits 64B (payload=16).
# The last line reruns the legacy-keyed transport benches (which now ride
# the v2 wire by default) so `make benchstat OLD=BENCH_2.json
# NEW=BENCH_9.json` pairs them against their v1-era numbers.
bench-wire:
	$(GO) test -json -run '^$$' -bench 'ExportImportWire' -benchtime 2s -benchmem -count=$(BENCH_COUNT) ./internal/pe/ > $(BENCH_WIRE_OUT)
	$(GO) test -json -run '^$$' -bench 'BatchEncodeSteadyState|BatchDecodeSteadyState' -benchmem ./internal/pe/ >> $(BENCH_WIRE_OUT)
	$(GO) test -json -run '^$$' -bench 'ExportImport$$|ExportImportPerTupleFlush$$|BenchmarkEncodeSteadyState$$|BenchmarkDecodeSteadyState$$' -benchmem ./internal/pe/ >> $(BENCH_WIRE_OUT)

# One-hundred-iteration smoke of the wire A/B benches for CI: proves both
# wire modes build and run, makes no timing claims.
bench-wire-smoke:
	$(GO) test -run '^$$' -bench 'ExportImportWire|BatchEncodeSteadyState|BatchDecodeSteadyState' -benchtime 100x -benchmem ./internal/pe/

# benchstat diffs two committed BENCH_*.json artifacts with the stdlib-only
# in-repo tool (averages repeated runs, marks better/worse per unit):
#   make benchstat OLD=BENCH_4.json NEW=BENCH_6.json
OLD ?= BENCH_4.json
NEW ?= BENCH_6.json
benchstat:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Short deterministic pass over the MPMC batch-operation fuzz corpus.
fuzz:
	$(GO) test ./internal/queue/ -run '^$$' -fuzz FuzzMPMCBatchOps -fuzztime 20s

# Short fuzz pass over the transport's coalesced v1 frame streams.
fuzz-pe:
	$(GO) test ./internal/pe/ -run '^$$' -fuzz FuzzBatchedFrames -fuzztime 20s

# Short fuzz pass over the v2 batch frame decoder (hostile headers, seq
# deltas, record lengths; committed seed corpus in testdata/fuzz).
fuzz-wire:
	$(GO) test ./internal/pe/ -run '^$$' -fuzz FuzzBatchFrameDecode -fuzztime 20s

# Short fuzz pass over the work-stealing deque against a reference model.
fuzz-deque:
	$(GO) test ./internal/queue/ -run '^$$' -fuzz FuzzDeque -fuzztime 20s

# Short fuzz pass over the Prometheus label-escaping round trip.
fuzz-obs:
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzPromEscape -fuzztime 20s

# Short fuzz pass over batch-compiled vs interpreted execution equivalence:
# random operator chains and inputs, byte-identical sink output required in
# both region shapes.
fuzz-batch:
	$(GO) test ./internal/exec/ -run '^$$' -fuzz FuzzBatchEquivalence -fuzztime 20s

# Short fuzz pass over the checkpoint decode surfaces: snapshot codec,
# Map/Cell restore, and the CRC-framed file log's torn/corrupt scan.
fuzz-ckpt:
	$(GO) test ./internal/state/ -run '^$$' -fuzz FuzzCheckpointCodec -fuzztime 20s

# Seeded fault-injection suite under the race detector: connection kills,
# frame corruption, operator panics with quarantine, watchdog freeze — all
# with exactly-once delivery and full tuple accounting asserted.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' -v ./internal/pe/

# Stateful-recovery chaos suite under the race detector: operator panics,
# connection kills, and checkpoint crash/corrupt/torn faults on the keyed
# join pipeline, with byte-identical output asserted against a fault-free
# run on the exactly-once path.
chaos-state:
	$(GO) test -race -count=1 -run 'ChaosState' -v ./internal/pe/

# Cluster-migration chaos suite under the race detector: a stateful region
# is moved between PEs mid-stream with connections killed mid-migration and
# operator panics dropping tuples, and the sink output must be
# byte-identical to a same-seed run that never migrates.
chaos-cluster:
	$(GO) test -race -count=1 -run 'ChaosCluster' -v ./internal/cluster/

# bench-cluster writes the elasticity settling results to
# $(BENCH_CLUSTER_OUT): BenchmarkClusterGrowShrink cycles a live stateful
# pipeline 2 -> 4 -> 2 per iteration and reports time-to-settle and the
# deepest 50ms delivery-rate window for each transition (1.0 = no dip),
# with gomaxprocs on every row for provenance.
bench-cluster:
	$(GO) test -json -run '^$$' -bench 'ClusterGrowShrink' -benchtime 5x -count=$(BENCH_COUNT) ./internal/cluster/ > $(BENCH_CLUSTER_OUT)

# One-cycle smoke of the elasticity bench for CI: proves the grow/shrink
# cycle completes without aborts or duplicates, makes no timing claims.
bench-cluster-smoke:
	$(GO) test -run '^$$' -bench 'ClusterGrowShrink' -benchtime 1x ./internal/cluster/
