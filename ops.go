package streamelastic

import (
	"time"

	"streamelastic/internal/spl"
)

// Built-in operators, re-exported so applications can compose pipelines
// without writing custom logic. All of them are safe under the dynamic
// threading model.

// Generator is a synthetic source emitting tuples with a configurable
// payload size; set MaxTuples to bound the stream.
type Generator = spl.Generator

// NewGenerator returns a generator source emitting tuples with
// payloadBytes bytes of payload.
func NewGenerator(name string, payloadBytes int) *Generator {
	return spl.NewGenerator(name, payloadBytes)
}

// NewWorkOp returns a synthetic compute operator that burns flopsPerTuple
// floating-point operations per tuple and forwards the tuple. Use it to
// emulate operator cost in benchmarks; its declared cost automatically
// matches its real cost.
func NewWorkOp(name string, flopsPerTuple float64) Operator {
	return spl.NewWork(name, spl.NewCostVar(flopsPerTuple))
}

// NewMap returns an operator applying fn to each tuple; returning nil drops
// the tuple.
func NewMap(name string, fn func(*Tuple) *Tuple) Operator {
	return spl.NewMap(name, fn)
}

// NewFilter returns an operator forwarding only tuples for which pred is
// true.
func NewFilter(name string, pred func(*Tuple) bool) Operator {
	return spl.NewFilter(name, pred)
}

// NewTokenize returns an operator that splits the Text attribute on
// whitespace and emits one keyed tuple per token.
func NewTokenize(name string) Operator {
	return spl.NewTokenize(name)
}

// NewRoundRobinSplit returns an operator distributing tuples across width
// output ports, the building block for data-parallel regions.
func NewRoundRobinSplit(name string, width int) Operator {
	return spl.NewRoundRobinSplit(name, width)
}

// KeyedCounter counts tuples per key over a sliding count window.
type KeyedCounter = spl.KeyedCounter

// NewKeyedCounter returns a sliding-window per-key counter over the last
// window tuples that emits the current count every emitEvery tuples.
func NewKeyedCounter(name string, window, emitEvery int) *KeyedCounter {
	return spl.NewKeyedCounter(name, window, emitEvery)
}

// CountingSink counts the tuples it receives; use Count to read results.
type CountingSink = spl.CountingSink

// NewCountingSink returns a terminal counting operator.
func NewCountingSink(name string) *CountingSink {
	return spl.NewCountingSink(name)
}

// NewThrottle wraps a source, capping its emission rate at tuplesPerSecond
// — useful for emulating rate-bounded feeds (network ingest, line-rate
// capture) in live runs.
func NewThrottle(src Source, tuplesPerSecond float64) Source {
	return spl.NewThrottle(src, tuplesPerSecond)
}

// NewSample returns an operator forwarding one tuple in every k.
func NewSample(name string, k int) Operator {
	return spl.NewSample(name, k)
}

// NewUnion returns a pass-through operator that merges its input ports
// onto output port 0.
func NewUnion(name string) Operator {
	return spl.NewUnion(name)
}

// Window aggregation functions for NewTimeWindow.
const (
	AggCount = spl.AggCount
	AggSum   = spl.AggSum
	AggAvg   = spl.AggAvg
	AggMin   = spl.AggMin
	AggMax   = spl.AggMax
)

// AggregateFunc selects how NewTimeWindow folds the Num1 attribute.
type AggregateFunc = spl.AggregateFunc

// TimeWindow aggregates tuples per key over sliding event-time windows.
type TimeWindow = spl.TimeWindow

// NewTimeWindow returns a sliding event-time window aggregator over the
// Num1 attribute: windows of length size advancing every slide (pass 0 for
// tumbling windows), keyed by the Key attribute, emitting one aggregate per
// key when the event-time watermark closes a window. This is the windowing
// of the paper's Fig. 2 Aggregate operator.
func NewTimeWindow(name string, size, slide time.Duration, fn AggregateFunc) *TimeWindow {
	return spl.NewTimeWindow(name, size, slide, fn)
}

// Reorder restores per-stream sequence order downstream of dynamic
// regions, where concurrent scheduler threads may deliver tuples out of
// emission order.
type Reorder = spl.Reorder

// NewReorder returns a resequencer releasing tuples in ascending Seq order
// starting at start, buffering at most capacity out-of-order tuples before
// force-releasing.
func NewReorder(name string, start uint64, capacity int) *Reorder {
	return spl.NewReorder(name, start, capacity)
}

// KeyedJoin enriches probe tuples (port 0) with the latest build-side value
// (port 1) per key.
type KeyedJoin = spl.KeyedJoin

// NewKeyedJoin returns an enrichment join keyed on the Key attribute:
// build-side tuples on port 1 update a per-key table, probe tuples on
// port 0 are emitted with the matching value in Num2.
func NewKeyedJoin(name string) *KeyedJoin {
	return spl.NewKeyedJoin(name)
}
